#include "ml/decision_tree.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace otac::ml {

namespace {

double gini(double positive, double total) noexcept {
  if (total <= 0.0) return 0.0;
  const double p = positive / total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

// Presort-partition CART (the classic presorted splitter, cf. sklearn's
// dense splitter and XGBoost's exact mode): each feature's rows are sorted
// ONCE per fit; when a node splits, every feature's segment is stably
// partitioned into the two children, so child segments stay sorted and
// find_best_split is a single linear scan per feature instead of an
// O(m log m) sort per feature per node.
//
// Entries carry (value, row, label) inline so the hot scans touch one
// contiguous array — the row-major Dataset is only consulted through the
// per-row side mask when a split is applied.
struct DecisionTree::PresortIndex {
  // 8 bytes: the label rides in the row index's high bit, and the weight
  // is not stored at all. The trainer's weights are uniform per class
  // (1.0, scaled by the §4.4.1 cost matrix for negatives), so the weight
  // is a two-entry table lookup on the label bit — bitwise the same float
  // the old inline field held. Non-uniform weights (AdaBoost reweighting)
  // fall back to a row-indexed load from the dataset's weight array.
  // fit() is bound by partition and scan traffic over these entries, so
  // every dropped byte is throughput.
  struct Entry {
    float value;
    std::uint32_t row_and_label;  // bit 31 = label, bits 0..30 = row

    [[nodiscard]] std::uint32_t row() const noexcept {
      return row_and_label & 0x7FFFFFFFU;
    }
  };

  std::size_t rows = 0;
  std::vector<Entry> entries;          // num_features segments of `rows`
  std::vector<Entry> scratch;          // right-child staging for partition
  std::vector<std::uint8_t> goes_left; // per-row side mark of current split
  bool uniform_weights = true;         // weight is a function of the label
  float class_weight[2] = {0.0F, 0.0F};  // [label] when uniform_weights
  const float* row_weights = nullptr;    // dataset weights (fallback path)

  /// The row's weight — exactly the float Dataset::weight(row) returns
  /// (the uniform path is only taken when every row of the class compared
  /// equal to the table entry, so the lookup is bitwise identical).
  [[nodiscard]] float weight_of(Entry e) const noexcept {
    return uniform_weights ? class_weight[e.row_and_label >> 31]
                           : row_weights[e.row()];
  }
  /// weight_of(e) when label == 1, else 0 — the positive-class mass term.
  [[nodiscard]] float positive_of(Entry e) const noexcept {
    return (e.row_and_label & 0x80000000U) != 0U ? weight_of(e) : 0.0F;
  }

  explicit PresortIndex(const Dataset& data)
      : rows(data.num_rows()),
        entries(data.num_features() * data.num_rows()),
        scratch(data.num_rows()),
        goes_left(data.num_rows()),
        row_weights(data.weights().data()) {
    // One pass to pack (row, label) words and detect per-class-uniform
    // weights (seen[] tracks which classes have fixed their table entry).
    std::vector<std::uint32_t> rowlab(rows);
    bool seen[2] = {false, false};
    for (std::size_t r = 0; r < rows; ++r) {
      const bool positive = data.label(r) == 1;
      rowlab[r] =
          static_cast<std::uint32_t>(r) | (positive ? 0x80000000U : 0U);
      const float w = data.weight(r);
      const std::size_t cls = positive ? 1 : 0;
      if (!seen[cls]) {
        seen[cls] = true;
        class_weight[cls] = w;
      } else if (w != class_weight[cls]) {
        uniform_weights = false;
      }
    }
    // LSD radix sort (3 passes of 11/11/10 bits over the order-preserving
    // float transform). Stable, so gathering in row order makes ties come
    // out row-ascending — the same deterministic (value, row) order a
    // comparison sort would produce — at a fraction of the comparison
    // sort's cost, which otherwise dominates fit() end to end.
    std::uint32_t hist[3][2048];
    for (std::size_t f = 0; f < data.num_features(); ++f) {
      Entry* seg = entries.data() + f * rows;
      Entry* tmp = scratch.data();
      for (std::size_t r = 0; r < rows; ++r) {
        tmp[r] = Entry{data.value(r, f), rowlab[r]};
      }
      std::fill(&hist[0][0], &hist[0][0] + 3 * 2048, 0U);
      for (std::size_t r = 0; r < rows; ++r) {
        const std::uint32_t k = ordered_bits(tmp[r].value);
        ++hist[0][k & 2047U];
        ++hist[1][(k >> 11) & 2047U];
        ++hist[2][k >> 22];
      }
      for (auto& h : hist) {
        std::uint32_t sum = 0;
        for (std::uint32_t& b : h) {
          const std::uint32_t count = b;
          b = sum;
          sum += count;
        }
      }
      for (std::size_t r = 0; r < rows; ++r) {
        const std::uint32_t k = ordered_bits(tmp[r].value);
        seg[hist[0][k & 2047U]++] = tmp[r];
      }
      for (std::size_t r = 0; r < rows; ++r) {
        const std::uint32_t k = ordered_bits(seg[r].value);
        tmp[hist[1][(k >> 11) & 2047U]++] = seg[r];
      }
      for (std::size_t r = 0; r < rows; ++r) {
        const std::uint32_t k = ordered_bits(tmp[r].value);
        seg[hist[2][k >> 22]++] = tmp[r];
      }
    }
  }

  /// Monotone bit pattern: u < v as floats iff ordered_bits(u) <
  /// ordered_bits(v) as unsigned ints (standard sign-flip transform).
  [[nodiscard]] static std::uint32_t ordered_bits(float v) noexcept {
    const auto u = std::bit_cast<std::uint32_t>(v);
    return u ^ ((u >> 31) != 0U ? 0xFFFFFFFFu : 0x80000000u);
  }

  [[nodiscard]] const Entry* segment(std::size_t feature,
                                     std::size_t begin) const {
    return entries.data() + feature * rows + begin;
  }

  /// Stably split [begin, begin+count) of every feature's segment by the
  /// side marks; left-child rows end up first, both halves stay sorted.
  void partition(std::size_t num_features, std::size_t begin,
                 std::size_t count) {
    for (std::size_t f = 0; f < num_features; ++f) {
      Entry* seg = entries.data() + f * rows + begin;
      std::size_t left = 0;
      std::size_t right = 0;
      for (std::size_t k = 0; k < count; ++k) {
        if (goes_left[seg[k].row()]) {
          seg[left++] = seg[k];
        } else {
          scratch[right++] = seg[k];
        }
      }
      std::copy(scratch.data(), scratch.data() + right, seg + left);
    }
  }
};

DecisionTree::SplitChoice DecisionTree::find_best_split(
    const Dataset& data, const PresortIndex& index, std::size_t begin,
    std::size_t count, Rng& feature_rng) const {
  SplitChoice best;
  const std::size_t d = data.num_features();
  if (d == 0 || count < 2) return best;

  // Optional feature subsampling (random forest mode).
  std::vector<std::size_t> features(d);
  std::iota(features.begin(), features.end(), 0);
  std::size_t consider = d;
  if (config_.max_features > 0 && config_.max_features < d) {
    consider = config_.max_features;
    for (std::size_t i = 0; i < consider; ++i) {
      const std::size_t j =
          i + feature_rng.next_below(static_cast<std::uint64_t>(d - i));
      std::swap(features[i], features[j]);
    }
  }

  double node_total = 0.0;
  double node_positive = 0.0;
  {
    const PresortIndex::Entry* seg = index.segment(0, begin);
    for (std::size_t k = 0; k < count; ++k) {
      node_total += static_cast<double>(index.weight_of(seg[k]));
      node_positive += static_cast<double>(index.positive_of(seg[k]));
    }
  }
  const double node_impurity = gini(node_positive, node_total);
  if (node_impurity <= 0.0) return best;  // pure node

  for (std::size_t fi = 0; fi < consider; ++fi) {
    const std::size_t f = features[fi];
    const PresortIndex::Entry* seg = index.segment(f, begin);
    // A constant-valued segment admits no cut (every adjacent pair is an
    // equal-value run), so the whole scan would fall through — skip it.
    // Sorted order makes the check O(1); deep nodes of the discretized
    // features (type, terminal, hour) hit this constantly.
    if (seg[0].value == seg[count - 1].value) continue;
    double left_total = 0.0;
    double left_positive = 0.0;
    for (std::size_t k = 0; k + 1 < count; ++k) {
      left_total += static_cast<double>(index.weight_of(seg[k]));
      left_positive += static_cast<double>(index.positive_of(seg[k]));
      const float value = seg[k].value;
      const float next_value = seg[k + 1].value;
      if (value == next_value) continue;  // no cut inside an equal-value run
      const double right_total = node_total - left_total;
      const double right_positive = node_positive - left_positive;
      if (left_total < config_.min_child_weight ||
          right_total < config_.min_child_weight) {
        continue;
      }
      const double weighted_child_impurity =
          (left_total * gini(left_positive, left_total) +
           right_total * gini(right_positive, right_total)) /
          node_total;
      const double relative_gain = node_impurity - weighted_child_impurity;
      // Mass-weighted gain: ranks splits of large nodes above equally
      // impressive splits of tiny nodes (standard CART importance, and the
      // right priority for best-first growth under a split budget).
      const double gain = relative_gain * node_total;
      if (gain > best.gain && relative_gain >= config_.min_impurity_decrease) {
        best.feature = f;
        // Midpoint threshold: robust to unseen values between the cut pair.
        best.threshold = value + (next_value - value) * 0.5F;
        best.gain = gain;
        best.valid = true;
      }
    }
  }
  return best;
}

void DecisionTree::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("DecisionTree: empty data");
  nodes_.clear();
  importance_.assign(data.num_features(), 0.0);
  splits_ = 0;
  height_ = 0;

  Rng feature_rng{config_.feature_subsample_seed};
  PresortIndex index{data};
  const std::size_t n = data.num_rows();
  const std::size_t d = data.num_features();

  struct Candidate {
    double gain;
    std::int32_t node;
    SplitChoice split;
    std::size_t begin;
    std::size_t count;

    bool operator<(const Candidate& other) const noexcept {
      return gain < other.gain;  // max-heap on gain
    }
  };

  const auto node_probability = [&](std::size_t begin, std::size_t count) {
    double total = 0.0;
    double positive = 0.0;
    // All feature segments hold the same row set; walk feature 0's (or row
    // ids directly for the featureless degenerate case, where only the
    // root exists and its segment is the whole dataset).
    if (d > 0) {
      const PresortIndex::Entry* seg = index.segment(0, begin);
      for (std::size_t k = 0; k < count; ++k) {
        total += static_cast<double>(index.weight_of(seg[k]));
        positive += static_cast<double>(index.positive_of(seg[k]));
      }
    } else {
      for (std::size_t k = 0; k < count; ++k) {
        const std::size_t r = begin + k;
        total += static_cast<double>(data.weight(r));
        if (data.label(r) == 1) positive += static_cast<double>(data.weight(r));
      }
    }
    return total > 0.0 ? static_cast<float>(positive / total) : 0.0F;
  };

  // Max-heap kept by push_heap/pop_heap: pop moves the winner to the back
  // where it can be *moved from* legally (std::priority_queue::top only
  // exposes a const reference, which the old code const_cast around).
  std::vector<Candidate> frontier;

  const auto make_leaf = [&](std::size_t begin, std::size_t count,
                             std::uint32_t depth) {
    Node node;
    node.probability = node_probability(begin, count);
    node.depth = depth;
    nodes_.push_back(node);
    height_ = std::max<std::size_t>(height_, depth);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  const auto consider_split = [&](std::int32_t node_id, std::size_t begin,
                                  std::size_t count) {
    if (nodes_[static_cast<std::size_t>(node_id)].depth >= config_.max_depth) {
      return;
    }
    const SplitChoice split =
        find_best_split(data, index, begin, count, feature_rng);
    if (split.valid) {
      frontier.push_back(Candidate{split.gain, node_id, split, begin, count});
      std::push_heap(frontier.begin(), frontier.end());
    }
  };

  const std::int32_t root = make_leaf(0, n, 0);
  consider_split(root, 0, n);

  while (!frontier.empty() && splits_ < config_.max_splits) {
    std::pop_heap(frontier.begin(), frontier.end());
    const Candidate cand = frontier.back();
    frontier.pop_back();

    // Mark sides off the *split feature's* segment — its values are inline
    // and sorted — then stably partition every feature's segment so both
    // children keep presorted order.
    std::size_t left_count = 0;
    {
      const PresortIndex::Entry* seg =
          index.segment(cand.split.feature, cand.begin);
      for (std::size_t k = 0; k < cand.count; ++k) {
        const bool left = seg[k].value <= cand.split.threshold;
        index.goes_left[seg[k].row()] = left ? 1 : 0;
        left_count += left ? 1 : 0;
      }
    }
    if (left_count == 0 || left_count == cand.count) continue;  // degenerate
    index.partition(d, cand.begin, cand.count);

    Node& parent = nodes_[static_cast<std::size_t>(cand.node)];
    parent.feature = static_cast<std::int32_t>(cand.split.feature);
    parent.threshold = cand.split.threshold;
    const std::uint32_t child_depth = parent.depth + 1;
    const std::int32_t left_id =
        make_leaf(cand.begin, left_count, child_depth);
    const std::int32_t right_id = make_leaf(
        cand.begin + left_count, cand.count - left_count, child_depth);
    // make_leaf may reallocate nodes_; re-reference the parent.
    nodes_[static_cast<std::size_t>(cand.node)].left = left_id;
    nodes_[static_cast<std::size_t>(cand.node)].right = right_id;

    importance_[cand.split.feature] += cand.split.gain;
    ++splits_;

    consider_split(left_id, cand.begin, left_count);
    consider_split(right_id, cand.begin + left_count,
                   cand.count - left_count);
  }
}

double DecisionTree::predict_proba(std::span<const float> features) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: not fitted");
  std::size_t node = 0;
  while (nodes_[node].feature >= 0) {
    const auto f = static_cast<std::size_t>(nodes_[node].feature);
    if (f >= features.size()) {
      throw std::invalid_argument("DecisionTree: feature arity mismatch");
    }
    node = static_cast<std::size_t>(features[f] <= nodes_[node].threshold
                                        ? nodes_[node].left
                                        : nodes_[node].right);
  }
  return nodes_[node].probability;
}

std::size_t DecisionTree::decision_path_length(
    std::span<const float> features) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: not fitted");
  std::size_t node = 0;
  std::size_t comparisons = 0;
  while (nodes_[node].feature >= 0) {
    ++comparisons;
    const auto f = static_cast<std::size_t>(nodes_[node].feature);
    node = static_cast<std::size_t>(features[f] <= nodes_[node].threshold
                                        ? nodes_[node].left
                                        : nodes_[node].right);
  }
  return comparisons;
}

std::string DecisionTree::serialize() const {
  std::ostringstream out;
  out.precision(9);
  out << "otac-dtree 1 " << nodes_.size() << ' ' << splits_ << ' ' << height_
      << ' ' << importance_.size() << '\n';
  for (const Node& node : nodes_) {
    out << node.feature << ' ' << node.threshold << ' ' << node.left << ' '
        << node.right << ' ' << node.probability << ' ' << node.depth << '\n';
  }
  for (const double gain : importance_) out << gain << ' ';
  out << '\n';
  return out.str();
}

DecisionTree DecisionTree::deserialize(const std::string& blob) {
  std::istringstream in{blob};
  std::string magic;
  int version = 0;
  std::size_t node_count = 0;
  std::size_t splits = 0;
  std::size_t height = 0;
  std::size_t feature_count = 0;
  in >> magic >> version >> node_count >> splits >> height >> feature_count;
  if (!in || magic != "otac-dtree" || version != 1) {
    throw std::invalid_argument("DecisionTree: bad serialization header");
  }
  // Bound the declared sizes against the blob before resizing: every node
  // line and importance entry needs at least two bytes of text, so counts
  // beyond blob.size() are corrupt headers, not big trees. This keeps a
  // flipped count byte from turning into an attacker-chosen allocation.
  if (node_count == 0 || node_count > blob.size() ||
      feature_count > blob.size()) {
    throw std::invalid_argument("DecisionTree: implausible header counts");
  }
  if (splits >= node_count || height >= node_count) {
    throw std::invalid_argument("DecisionTree: inconsistent header counts");
  }
  DecisionTree tree;
  tree.splits_ = splits;
  tree.height_ = height;
  tree.nodes_.resize(node_count);
  for (Node& node : tree.nodes_) {
    in >> node.feature >> node.threshold >> node.left >> node.right >>
        node.probability >> node.depth;
  }
  tree.importance_.resize(feature_count);
  for (double& gain : tree.importance_) in >> gain;
  if (!in) throw std::invalid_argument("DecisionTree: truncated blob");
  // Structural validation. Children must point strictly forward (our
  // builder always appends children after the parent), which rules out
  // cycles and guarantees predict() terminates; features must exist; all
  // floats must be finite with probabilities in [0, 1].
  for (std::size_t i = 0; i < node_count; ++i) {
    const Node& node = tree.nodes_[i];
    if (!std::isfinite(node.probability) || node.probability < 0.0F ||
        node.probability > 1.0F) {
      throw std::invalid_argument("DecisionTree: invalid node probability");
    }
    if (node.depth >= node_count) {
      throw std::invalid_argument("DecisionTree: invalid node depth");
    }
    if (node.feature < 0) {
      if (node.feature != -1 || node.left != -1 || node.right != -1) {
        throw std::invalid_argument("DecisionTree: malformed leaf");
      }
      continue;
    }
    if (static_cast<std::size_t>(node.feature) >= feature_count) {
      throw std::invalid_argument("DecisionTree: feature id out of range");
    }
    if (!std::isfinite(node.threshold)) {
      throw std::invalid_argument("DecisionTree: non-finite threshold");
    }
    const bool forward =
        node.left > static_cast<std::int32_t>(i) &&
        node.right > static_cast<std::int32_t>(i) &&
        static_cast<std::size_t>(node.left) < node_count &&
        static_cast<std::size_t>(node.right) < node_count;
    if (!forward) {
      throw std::invalid_argument("DecisionTree: invalid child index");
    }
  }
  for (const double gain : tree.importance_) {
    if (!std::isfinite(gain) || gain < 0.0) {
      throw std::invalid_argument("DecisionTree: invalid importance");
    }
  }
  return tree;
}

std::string DecisionTree::to_text(
    const std::vector<std::string>& feature_names) const {
  std::ostringstream out;
  if (nodes_.empty()) return "(unfitted)\n";
  std::vector<std::pair<std::size_t, std::string>> stack{{0, ""}};
  while (!stack.empty()) {
    const auto [id, indent] = stack.back();
    stack.pop_back();
    const Node& node = nodes_[id];
    if (node.feature < 0) {
      out << indent << "leaf p(one-time)=" << node.probability << "\n";
      continue;
    }
    const auto f = static_cast<std::size_t>(node.feature);
    const std::string label =
        f < feature_names.size() ? feature_names[f] : "f" + std::to_string(f);
    out << indent << label << " <= " << node.threshold << " ?\n";
    stack.emplace_back(static_cast<std::size_t>(node.right), indent + "  ");
    stack.emplace_back(static_cast<std::size_t>(node.left), indent + "  ");
  }
  return out.str();
}

}  // namespace otac::ml
