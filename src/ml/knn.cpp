#include "ml/knn.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace otac::ml {

KnnClassifier::KnnClassifier(KnnConfig config) : config_(config) {
  if (config_.k == 0) throw std::invalid_argument("KNN: k must be >= 1");
}

void KnnClassifier::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("KNN: empty data");
  scaler_.fit(data);
  dims_ = data.num_features();

  std::vector<std::size_t> keep(data.num_rows());
  std::iota(keep.begin(), keep.end(), 0);
  if (config_.max_train_rows > 0 && keep.size() > config_.max_train_rows) {
    Rng rng{config_.seed};
    for (std::size_t i = 0; i < config_.max_train_rows; ++i) {
      const std::size_t j = i + rng.next_below(keep.size() - i);
      std::swap(keep[i], keep[j]);
    }
    keep.resize(config_.max_train_rows);
  }

  train_.clear();
  train_.reserve(keep.size() * dims_);
  labels_.clear();
  weights_.clear();
  std::vector<float> buffer;
  for (const std::size_t i : keep) {
    scaler_.transform(data.row(i), buffer);
    train_.insert(train_.end(), buffer.begin(), buffer.end());
    labels_.push_back(data.label(i));
    weights_.push_back(data.weight(i));
  }
}

double KnnClassifier::predict_proba(std::span<const float> features) const {
  if (labels_.empty()) throw std::logic_error("KNN: not fitted");
  std::vector<float> query;
  scaler_.transform(features, query);

  const std::size_t n = labels_.size();
  const std::size_t k = std::min(config_.k, n);

  // Max-heap of (distance, index) over the current k best.
  std::vector<std::pair<float, std::size_t>> heap;
  heap.reserve(k + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = train_.data() + i * dims_;
    float dist = 0.0F;
    for (std::size_t f = 0; f < dims_; ++f) {
      const float d = row[f] - query[f];
      dist += d * d;
    }
    if (heap.size() < k) {
      heap.emplace_back(dist, i);
      std::push_heap(heap.begin(), heap.end());
    } else if (dist < heap.front().first) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = {dist, i};
      std::push_heap(heap.begin(), heap.end());
    }
  }

  double positive = 0.0;
  double total = 0.0;
  for (const auto& [dist, idx] : heap) {
    const double w = weights_[idx];
    total += w;
    if (labels_[idx] == 1) positive += w;
  }
  return total > 0.0 ? positive / total : 0.5;
}

}  // namespace otac::ml
