// AdaBoost (discrete SAMME, two classes == classic AdaBoost.M1) over
// shallow CART trees — the second ensemble of Table 1.
#pragma once

#include "ml/decision_tree.h"

namespace otac::ml {

struct AdaBoostConfig {
  std::size_t num_rounds = 30;  // paper: 30 base learners
  /// Shallow trees keep each round cheap; depth 3 lets a base learner
  /// bootstrap on interaction-only targets (e.g. XOR) where every single
  /// split has near-zero marginal gain.
  DecisionTreeConfig tree{.max_splits = 7, .max_depth = 3};
  std::uint64_t seed = 42;
};

class AdaBoost final : public Classifier {
 public:
  explicit AdaBoost(AdaBoostConfig config = {});

  void fit(const Dataset& data) override;
  [[nodiscard]] double predict_proba(
      std::span<const float> features) const override;
  [[nodiscard]] std::string name() const override { return "AdaBoost"; }

  [[nodiscard]] std::size_t round_count() const noexcept {
    return learners_.size();
  }

 private:
  AdaBoostConfig config_;
  std::vector<DecisionTree> learners_;
  std::vector<double> alphas_;
};

}  // namespace otac::ml
