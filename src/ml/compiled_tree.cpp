#include "ml/compiled_tree.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace otac::ml {

CompiledTree CompiledTree::compile(const DecisionTree& tree) {
  const std::size_t count = tree.node_count();
  if (count == 0) throw std::logic_error("CompiledTree: tree not fitted");
  CompiledTree out;
  // One-time build at a retrain barrier, never per request.
  // otac-lint: allow(hotpath-alloc)
  out.feature_.resize(count);
  // otac-lint: allow(hotpath-alloc)
  out.threshold_.resize(count);
  // otac-lint: allow(hotpath-alloc)
  out.left_.resize(count);
  // otac-lint: allow(hotpath-alloc)
  out.right_.resize(count);
  // otac-lint: allow(hotpath-alloc)
  out.proba_.resize(count);
  out.height_ = tree.height();
  out.required_arity_ = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const DecisionTree::NodeView node = tree.node(i);
    out.proba_[i] = node.probability;
    if (node.feature < 0) {
      // Leaf: self-loop so the batched walk can advance it unconditionally.
      out.feature_[i] = 0;
      out.threshold_[i] = 0.0F;
      out.left_[i] = static_cast<std::uint32_t>(i);
      out.right_[i] = static_cast<std::uint32_t>(i);
    } else {
      out.feature_[i] = static_cast<std::uint32_t>(node.feature);
      out.threshold_[i] = node.threshold;
      out.left_[i] = static_cast<std::uint32_t>(node.left);
      out.right_[i] = static_cast<std::uint32_t>(node.right);
      out.required_arity_ = std::max(
          out.required_arity_, static_cast<std::size_t>(node.feature) + 1);
    }
  }
  return out;
}

double CompiledTree::predict_proba(std::span<const float> features) const {
  if (empty()) throw std::logic_error("CompiledTree: not fitted");
  std::uint32_t node = 0;
  while (left_[node] != node) {
    const std::uint32_t f = feature_[node];
    if (f >= features.size()) {
      throw std::invalid_argument("CompiledTree: feature arity mismatch");
    }
    node = features[f] <= threshold_[node] ? left_[node] : right_[node];
  }
  return proba_[node];
}

void CompiledTree::predict_proba_batch(const float* rows, std::size_t n,
                                       std::size_t stride, float* out) const {
  if (empty()) throw std::logic_error("CompiledTree: not fitted");
  if (n > kMaxBatch) {
    throw std::invalid_argument("CompiledTree: batch exceeds kMaxBatch");
  }
  std::array<std::uint32_t, kMaxBatch> node{};  // every row starts at root
  std::array<std::uint32_t, kMaxBatch> active;  // rows still descending
  for (std::size_t r = 0; r < n; ++r) active[r] = static_cast<std::uint32_t>(r);
  std::size_t alive = n;
  const std::uint32_t* feat = feature_.data();
  const float* thr = threshold_.data();
  const std::uint32_t* lhs = left_.data();
  const std::uint32_t* rhs = right_.data();
  for (std::size_t level = 0; level < height_ && alive > 0; ++level) {
    // Level-synchronous walk with active-row compaction: rows that reach a
    // leaf drop out (branch-free, via the arithmetic keep-mask below), so
    // the work is the sum of the reached leaf *depths*, not height * n —
    // a best-first tree is deep only on rare paths.
    std::size_t kept = 0;
    for (std::size_t k = 0; k < alive; ++k) {
      const std::uint32_t r = active[k];
      const std::uint32_t cur = node[r];
      // Identical comparison to the scalar walk: `<=` sends NaN right.
      const float value = rows[r * stride + feat[cur]];
      const std::uint32_t next = value <= thr[cur] ? lhs[cur] : rhs[cur];
      node[r] = next;
      active[kept] = r;
      // Leaves self-loop, so `left == self` identifies arrival.
      kept += lhs[next] != next ? 1 : 0;
    }
    alive = kept;
  }
  for (std::size_t r = 0; r < n; ++r) out[r] = proba_[node[r]];
}

void CompiledTree::encode_words(std::span<std::uint32_t> out) const {
  const std::size_t count = node_count();
  out[0] = static_cast<std::uint32_t>(count);
  out[1] = static_cast<std::uint32_t>(height_);
  out[2] = static_cast<std::uint32_t>(required_arity_);
  std::uint32_t* cursor = out.data() + kHeaderWords;
  for (std::size_t i = 0; i < count; ++i) {
    cursor[0] = feature_[i];
    cursor[1] = left_[i];
    cursor[2] = right_[i];
    cursor[3] = std::bit_cast<std::uint32_t>(threshold_[i]);
    cursor[4] = std::bit_cast<std::uint32_t>(proba_[i]);
    cursor += kWordsPerNode;
  }
}

bool CompiledTree::decode_words(std::span<const std::uint32_t> words,
                                CompiledTree& out) {
  if (words.size() < kHeaderWords) return false;
  const std::size_t count = words[0];
  if (count == 0 || words.size() < kHeaderWords + kWordsPerNode * count) {
    return false;
  }
  // Cold path (one decode per shard per retrain epoch); the resizes reuse
  // the reader-owned capacity after the first epoch.
  // otac-lint: allow(hotpath-alloc)
  out.feature_.resize(count);
  // otac-lint: allow(hotpath-alloc)
  out.threshold_.resize(count);
  // otac-lint: allow(hotpath-alloc)
  out.left_.resize(count);
  // otac-lint: allow(hotpath-alloc)
  out.right_.resize(count);
  // otac-lint: allow(hotpath-alloc)
  out.proba_.resize(count);
  out.height_ = words[1];
  out.required_arity_ = words[2];
  const std::uint32_t* cursor = words.data() + kHeaderWords;
  for (std::size_t i = 0; i < count; ++i) {
    out.feature_[i] = cursor[0];
    out.left_[i] = cursor[1];
    out.right_[i] = cursor[2];
    out.threshold_[i] = std::bit_cast<float>(cursor[3]);
    out.proba_[i] = std::bit_cast<float>(cursor[4]);
    cursor += kWordsPerNode;
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (out.left_[i] >= count || out.right_[i] >= count) return false;
  }
  return true;
}

}  // namespace otac::ml
