#include "ml/logistic.h"

#include <cmath>
#include <stdexcept>

namespace otac::ml {

namespace {
double stable_sigmoid(double x) noexcept {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}
}  // namespace

void LogisticRegression::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("Logistic: empty data");
  scaler_.fit(data);
  const Dataset scaled = scaler_.transform(data);
  const std::size_t n = scaled.num_rows();
  const std::size_t d = scaled.num_features();
  coef_.assign(d, 0.0);
  intercept_ = 0.0;

  const double total_weight = scaled.total_weight();
  std::vector<double> gradient(d);
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    std::fill(gradient.begin(), gradient.end(), 0.0);
    double gradient_intercept = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = scaled.row(i);
      double margin = intercept_;
      for (std::size_t f = 0; f < d; ++f) {
        margin += coef_[f] * static_cast<double>(row[f]);
      }
      const double error = (stable_sigmoid(margin) - scaled.label(i)) *
                           static_cast<double>(scaled.weight(i));
      for (std::size_t f = 0; f < d; ++f) {
        gradient[f] += error * static_cast<double>(row[f]);
      }
      gradient_intercept += error;
    }
    const double step = config_.learning_rate;
    for (std::size_t f = 0; f < d; ++f) {
      coef_[f] -=
          step * (gradient[f] / total_weight + config_.l2 * coef_[f]);
    }
    intercept_ -= step * gradient_intercept / total_weight;
  }
}

double LogisticRegression::predict_proba(
    std::span<const float> features) const {
  if (coef_.empty()) throw std::logic_error("Logistic: not fitted");
  std::vector<float> scaled;
  scaler_.transform(features, scaled);
  double margin = intercept_;
  for (std::size_t f = 0; f < scaled.size(); ++f) {
    margin += coef_[f] * static_cast<double>(scaled[f]);
  }
  return stable_sigmoid(margin);
}

}  // namespace otac::ml
