#include "ml/cross_validation.h"

#include <chrono>
#include <stdexcept>

namespace otac::ml {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct PooledPredictions {
  std::vector<int> actual;
  std::vector<int> predicted;
  std::vector<double> scores;
};

void score_fold(const Dataset& train, const Dataset& test,
                const ClassifierFactory& factory, PooledPredictions& pool,
                CvMetrics& metrics) {
  const auto classifier = factory();
  const auto fit_start = Clock::now();
  classifier->fit(train);
  metrics.fit_seconds += seconds_since(fit_start);

  const auto predict_start = Clock::now();
  for (std::size_t i = 0; i < test.num_rows(); ++i) {
    const double p = classifier->predict_proba(test.row(i));
    pool.actual.push_back(test.label(i));
    pool.scores.push_back(p);
    pool.predicted.push_back(p >= 0.5 ? 1 : 0);
  }
  metrics.predict_seconds += seconds_since(predict_start);
}

CvMetrics finalize(PooledPredictions& pool, CvMetrics metrics) {
  metrics.confusion =
      confusion_from_predictions(pool.actual, pool.predicted);
  metrics.precision = metrics.confusion.precision();
  metrics.recall = metrics.confusion.recall();
  metrics.accuracy = metrics.confusion.accuracy();
  metrics.auc = auc(pool.actual, pool.scores);
  return metrics;
}

}  // namespace

CvMetrics cross_validate(const Dataset& data, const ClassifierFactory& factory,
                         std::size_t folds, Rng& rng) {
  const auto fold_indices = data.kfold_indices(folds, rng);
  CvMetrics metrics;
  PooledPredictions pool;
  pool.actual.reserve(data.num_rows());

  for (std::size_t held_out = 0; held_out < folds; ++held_out) {
    std::vector<std::size_t> train_rows;
    train_rows.reserve(data.num_rows());
    for (std::size_t f = 0; f < folds; ++f) {
      if (f == held_out) continue;
      train_rows.insert(train_rows.end(), fold_indices[f].begin(),
                        fold_indices[f].end());
    }
    const Dataset train = data.subset_rows(train_rows);
    const Dataset test = data.subset_rows(fold_indices[held_out]);
    if (train.empty() || test.empty()) {
      throw std::invalid_argument("cross_validate: fold too small");
    }
    score_fold(train, test, factory, pool, metrics);
  }
  return finalize(pool, metrics);
}

CvMetrics evaluate_split(const Dataset& train, const Dataset& test,
                         const ClassifierFactory& factory) {
  CvMetrics metrics;
  PooledPredictions pool;
  score_fold(train, test, factory, pool, metrics);
  return finalize(pool, metrics);
}

}  // namespace otac::ml
