#include "ml/feature_selection.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <stdexcept>

#include "ml/cross_validation.h"

namespace otac::ml {

double binary_entropy(double positive, double total) noexcept {
  if (total <= 0.0) return 0.0;
  const double p = positive / total;
  double h = 0.0;
  if (p > 0.0) h -= p * std::log2(p);
  if (p < 1.0) h -= (1.0 - p) * std::log2(1.0 - p);
  return h;
}

double information_gain(const Dataset& data, std::size_t feature,
                        std::size_t max_bins) {
  if (feature >= data.num_features()) {
    throw std::out_of_range("information_gain: feature index");
  }
  if (data.empty()) return 0.0;

  const std::size_t n = data.num_rows();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return data.value(a, feature) < data.value(b, feature);
  });

  const double total_weight = data.total_weight();
  const double total_positive = data.positive_weight();
  const double parent = binary_entropy(total_positive, total_weight);

  // Equal-frequency bins that never split a run of identical values.
  const std::size_t target_per_bin = std::max<std::size_t>(1, n / max_bins);
  double children = 0.0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    double bin_weight = 0.0;
    double bin_positive = 0.0;
    while (j < n &&
           (j - i < target_per_bin ||
            data.value(order[j], feature) ==
                data.value(order[j - 1], feature))) {
      const std::size_t r = order[j];
      bin_weight += static_cast<double>(data.weight(r));
      if (data.label(r) == 1) {
        bin_positive += static_cast<double>(data.weight(r));
      }
      ++j;
    }
    children +=
        (bin_weight / total_weight) * binary_entropy(bin_positive, bin_weight);
    i = j;
  }
  return std::max(0.0, parent - children);
}

std::vector<double> information_gains(const Dataset& data,
                                      std::size_t max_bins) {
  std::vector<double> gains(data.num_features());
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    gains[f] = information_gain(data, f, max_bins);
  }
  return gains;
}

ForwardSelectionResult forward_select(const Dataset& data,
                                      const ClassifierFactory& factory,
                                      const ForwardSelectionConfig& config) {
  ForwardSelectionResult result;
  result.gains = information_gains(data, config.max_bins);

  std::vector<std::size_t> candidates(data.num_features());
  std::iota(candidates.begin(), candidates.end(), 0);
  std::sort(candidates.begin(), candidates.end(),
            [&](std::size_t a, std::size_t b) {
              return result.gains[a] > result.gains[b];
            });

  double best_accuracy = 0.0;
  for (const std::size_t candidate : candidates) {
    std::vector<std::size_t> attempt = result.selected;
    attempt.push_back(candidate);
    const Dataset projected = data.subset_features(attempt);
    Rng rng{config.seed};
    const CvMetrics metrics =
        cross_validate(projected, factory, config.cv_folds, rng);
    result.accuracy_trace.push_back(metrics.accuracy);
    if (result.selected.empty() ||
        metrics.accuracy > best_accuracy + config.min_improvement) {
      result.selected = std::move(attempt);
      best_accuracy = metrics.accuracy;
    } else {
      break;  // paper: stop once the goal set stops improving
    }
  }
  return result;
}

}  // namespace otac::ml
