// k-fold cross-validation producing the Table-1 metric quadruple
// (precision, recall, accuracy, AUC) plus timing.
#pragma once

#include "ml/classifier.h"
#include "ml/metrics.h"

namespace otac::ml {

struct CvMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double accuracy = 0.0;
  double auc = 0.0;
  double fit_seconds = 0.0;      // total across folds
  double predict_seconds = 0.0;  // total across folds
  ConfusionMatrix confusion;     // pooled over folds
};

/// Train on k-1 folds, score the held-out fold, pool predictions across
/// folds, compute metrics once on the pooled set (avoids small-fold noise).
[[nodiscard]] CvMetrics cross_validate(const Dataset& data,
                                       const ClassifierFactory& factory,
                                       std::size_t folds, Rng& rng);

/// Single split evaluation: fit on train, score on test.
[[nodiscard]] CvMetrics evaluate_split(const Dataset& train,
                                       const Dataset& test,
                                       const ClassifierFactory& factory);

}  // namespace otac::ml
