// Batched, branch-free inference over a fitted DecisionTree (§3.1.2 meets
// §5.3.5: the paper's whole premise is that a ≤30-split CART is cheap
// enough to sit on the serving path — this is the engine that makes it so).
//
// compile() flattens the pointer-chasing Node array into parallel SoA
// vectors (feature index, threshold, child indices, leaf probability); at
// the default 30-split budget the whole structure is ~1 KB and lives in L1.
// Leaves are encoded as *self-loops* (left == right == self), so the
// batched walk needs no branch on node type: every row simply advances
// `node = value <= threshold ? left : right` for height() levels, and rows
// that reached a leaf early spin in place. That turns per-level advancement
// into a conditional move the compiler can keep branch-free, and lets one
// call classify up to kMaxBatch staged requests with their dependent loads
// overlapped instead of serialized.
//
// Predictions are bit-identical to DecisionTree::predict_proba — same
// comparisons (`<=` with NaN falling right), same float probabilities —
// which is what keeps the golden-pinned eviction hashes and shards=1
// bit-identity intact (tests/ml/compiled_tree_test.cpp pins this).
//
// The word codec (encode_words/decode_words) serializes the tree into
// fixed-width 32-bit words so core/model_slot.h can publish it through a
// seqlock of plain std::atomic<uint32_t> — floats travel via bit_cast, so
// a decode round-trip is exact.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ml/decision_tree.h"

namespace otac::ml {

class CompiledTree {
 public:
  /// Upper bound on rows per predict_proba_batch call (the per-shard
  /// admission micro-batch size in core/serving_core.h).
  static constexpr std::size_t kMaxBatch = 64;

  /// Word-codec layout: [node_count, height, required_arity] header, then
  /// node_count words each of feature, left, right, threshold, probability.
  static constexpr std::size_t kHeaderWords = 3;
  static constexpr std::size_t kWordsPerNode = 5;

  CompiledTree() = default;

  /// Flatten a fitted tree. Throws std::logic_error when `tree` is unfitted.
  [[nodiscard]] static CompiledTree compile(const DecisionTree& tree);

  [[nodiscard]] bool empty() const noexcept { return feature_.empty(); }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return feature_.size();
  }
  [[nodiscard]] std::size_t height() const noexcept { return height_; }
  /// 1 + the largest feature index any split reads; rows at least this wide
  /// can go through the batched walk without per-node bounds checks.
  [[nodiscard]] std::size_t required_arity() const noexcept {
    return required_arity_;
  }

  /// Scalar prediction, semantics identical to DecisionTree::predict_proba:
  /// throws std::logic_error when unfitted, std::invalid_argument when the
  /// walk reaches a split whose feature index is outside `features`.
  [[nodiscard]] double predict_proba(std::span<const float> features) const;
  [[nodiscard]] int predict(std::span<const float> features) const {
    return predict_proba(features) >= 0.5 ? 1 : 0;
  }

  /// Classify `n` rows (n <= kMaxBatch) stored row-major at `rows` with
  /// `stride` floats per row. The caller must guarantee
  /// required_arity() <= stride (no per-node bounds checks on this path).
  /// Writes one probability per row; each is bit-identical to the scalar
  /// predict_proba of the same row (float widened to double).
  void predict_proba_batch(const float* rows, std::size_t n,
                           std::size_t stride, float* out) const;

  // --- word codec for core/model_slot.h -------------------------------
  [[nodiscard]] std::size_t word_count() const noexcept {
    return kHeaderWords + kWordsPerNode * node_count();
  }
  /// Serialize into exactly word_count() words.
  void encode_words(std::span<std::uint32_t> out) const;
  /// Rebuild from an encode_words() image (reuses `out`'s capacity).
  /// Returns false on a structurally implausible image instead of throwing
  /// (the seqlock reader validates sequence numbers before decoding, so
  /// false indicates a logic bug, not a torn read).
  [[nodiscard]] static bool decode_words(std::span<const std::uint32_t> words,
                                         CompiledTree& out);

  friend bool operator==(const CompiledTree&, const CompiledTree&) = default;

 private:
  // SoA node storage; leaf i has left_[i] == right_[i] == i, feature_ 0.
  std::vector<std::uint32_t> feature_;
  std::vector<float> threshold_;
  std::vector<std::uint32_t> left_;
  std::vector<std::uint32_t> right_;
  std::vector<float> proba_;
  std::size_t height_ = 0;
  std::size_t required_arity_ = 0;
};

}  // namespace otac::ml
