// Back-propagation neural network ("BP NN" in Table 1): one hidden layer of
// sigmoid units trained with minibatch SGD and momentum on standardized
// features. Deliberately the same modest architecture class the paper
// benchmarks — the point of Table 1 is that it loses to trees here.
#pragma once

#include "ml/classifier.h"
#include "ml/scaler.h"

namespace otac::ml {

struct MlpConfig {
  std::size_t hidden_units = 16;
  double learning_rate = 0.3;
  double momentum = 0.9;
  std::size_t epochs = 30;
  std::size_t batch_size = 64;
  std::uint64_t seed = 42;
};

class MlpClassifier final : public Classifier {
 public:
  explicit MlpClassifier(MlpConfig config = {});

  void fit(const Dataset& data) override;
  [[nodiscard]] double predict_proba(
      std::span<const float> features) const override;
  [[nodiscard]] std::string name() const override { return "BP-NN"; }

 private:
  [[nodiscard]] double forward(std::span<const float> scaled,
                               std::vector<double>& hidden) const;

  MlpConfig config_;
  StandardScaler scaler_;
  std::size_t dims_ = 0;
  // w1: hidden x (dims+1) with bias column; w2: hidden+1 with bias.
  std::vector<double> w1_;
  std::vector<double> w2_;
};

}  // namespace otac::ml
