// Information-gain ranking and greedy forward feature selection (§3.2.2).
//
// The paper starts from the full feature set, repeatedly moves the feature
// with the largest information gain into the goal set, and stops as soon as
// the goal set stops improving classification. The reported outcome is
// {avg views of owner, recency, age, access hour, type}.
#pragma once

#include <vector>

#include "ml/classifier.h"
#include "ml/metrics.h"

namespace otac::ml {

/// Shannon entropy (bits) of a binary split: positive/total weights.
[[nodiscard]] double binary_entropy(double positive, double total) noexcept;

/// Information gain of one feature w.r.t. the binary label, computed by
/// bucketing the feature into at most `max_bins` equal-frequency bins
/// (distinct values are used directly when fewer).
[[nodiscard]] double information_gain(const Dataset& data, std::size_t feature,
                                      std::size_t max_bins = 32);

/// Gains for every feature, in feature order.
[[nodiscard]] std::vector<double> information_gains(const Dataset& data,
                                                    std::size_t max_bins = 32);

struct ForwardSelectionResult {
  std::vector<std::size_t> selected;     // feature indices, selection order
  std::vector<double> accuracy_trace;    // CV accuracy after each addition
  std::vector<double> gains;             // IG of every feature (full set)
};

struct ForwardSelectionConfig {
  std::size_t cv_folds = 3;
  double min_improvement = 1e-4;  // stop when accuracy gains fall below this
  std::size_t max_bins = 32;
  std::uint64_t seed = 42;
};

/// Greedy forward selection in descending-IG order, scoring each candidate
/// set by k-fold CV accuracy of a classifier from `factory`; stops at the
/// first non-improving addition (paper's rule).
[[nodiscard]] ForwardSelectionResult forward_select(
    const Dataset& data, const ClassifierFactory& factory,
    const ForwardSelectionConfig& config = {});

}  // namespace otac::ml
