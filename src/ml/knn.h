// k-nearest-neighbours with standardized Euclidean distance and weighted
// voting. Brute force with an optional training-set subsample cap, which is
// how the Table-1 harness keeps single-core prediction affordable.
#pragma once

#include "ml/classifier.h"
#include "ml/scaler.h"

namespace otac::ml {

struct KnnConfig {
  std::size_t k = 5;
  /// Cap on stored training rows (0 = keep all); a uniform subsample is
  /// taken beyond the cap.
  std::size_t max_train_rows = 20'000;
  std::uint64_t seed = 42;
};

class KnnClassifier final : public Classifier {
 public:
  explicit KnnClassifier(KnnConfig config = {});

  void fit(const Dataset& data) override;
  [[nodiscard]] double predict_proba(
      std::span<const float> features) const override;
  [[nodiscard]] std::string name() const override { return "KNN"; }

  [[nodiscard]] std::size_t stored_rows() const noexcept { return labels_.size(); }

 private:
  KnnConfig config_;
  StandardScaler scaler_;
  std::vector<float> train_;  // row-major standardized
  std::vector<int> labels_;
  std::vector<float> weights_;
  std::size_t dims_ = 0;
};

}  // namespace otac::ml
