// Common interface for all seven classifiers of Table 1.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>

#include "ml/dataset.h"

namespace otac::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Train on the dataset (instance weights included). May be called again
  /// to refit from scratch.
  virtual void fit(const Dataset& data) = 0;

  /// P(label == 1 | features). Must be callable only after fit().
  [[nodiscard]] virtual double predict_proba(
      std::span<const float> features) const = 0;

  /// Hard decision at the 0.5 posterior threshold.
  [[nodiscard]] virtual int predict(std::span<const float> features) const {
    return predict_proba(features) >= 0.5 ? 1 : 0;
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

}  // namespace otac::ml
