// L2-regularized logistic regression trained by full-batch gradient descent
// on standardized features, with instance weights.
#pragma once

#include "ml/classifier.h"
#include "ml/scaler.h"

namespace otac::ml {

struct LogisticConfig {
  double learning_rate = 0.5;
  double l2 = 1e-4;
  std::size_t epochs = 300;
};

class LogisticRegression final : public Classifier {
 public:
  explicit LogisticRegression(LogisticConfig config = {}) : config_(config) {}

  void fit(const Dataset& data) override;
  [[nodiscard]] double predict_proba(
      std::span<const float> features) const override;
  [[nodiscard]] std::string name() const override { return "LogisticRegression"; }

  [[nodiscard]] const std::vector<double>& coefficients() const noexcept {
    return coef_;
  }
  [[nodiscard]] double intercept() const noexcept { return intercept_; }

 private:
  LogisticConfig config_;
  StandardScaler scaler_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

}  // namespace otac::ml
