// Random forest: bagged CART trees with per-split feature subsampling.
// Included for the Table-1 comparison; the paper measures ~1% accuracy gain
// over a single tree at ~30x the prediction cost, which is why the single
// tree wins the deployment slot.
#pragma once

#include "ml/decision_tree.h"

namespace otac::ml {

struct RandomForestConfig {
  std::size_t num_trees = 30;  // paper: "increased to 30" base learners
  DecisionTreeConfig tree{};
  /// Features per split; 0 = floor(sqrt(d)).
  std::size_t max_features = 0;
  std::uint64_t seed = 42;
};

class RandomForest final : public Classifier {
 public:
  explicit RandomForest(RandomForestConfig config = {});

  void fit(const Dataset& data) override;
  [[nodiscard]] double predict_proba(
      std::span<const float> features) const override;
  [[nodiscard]] std::string name() const override { return "RandomForest"; }

  [[nodiscard]] std::size_t tree_count() const noexcept { return trees_.size(); }
  [[nodiscard]] const DecisionTree& tree(std::size_t i) const {
    return trees_.at(i);
  }

 private:
  RandomForestConfig config_;
  std::vector<DecisionTree> trees_;
};

}  // namespace otac::ml
