// Gaussian Naive Bayes with weighted sufficient statistics and variance
// smoothing. In the paper's Table 1 NB shows the classic failure mode on
// this problem — near-total recall with poor precision — which our
// reproduction should echo.
#pragma once

#include <vector>

#include "ml/classifier.h"

namespace otac::ml {

class GaussianNaiveBayes final : public Classifier {
 public:
  void fit(const Dataset& data) override;
  [[nodiscard]] double predict_proba(
      std::span<const float> features) const override;
  [[nodiscard]] std::string name() const override { return "NaiveBayes"; }

 private:
  // Index 0 = negative class, 1 = positive class.
  std::vector<double> mean_[2];
  std::vector<double> variance_[2];
  double log_prior_[2] = {0.0, 0.0};
  bool fitted_ = false;
};

}  // namespace otac::ml
