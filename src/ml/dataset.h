// Row-major tabular dataset for binary classification.
//
// Labels follow the paper's convention: class 1 ("positive") is
// one-time-access, class 0 ("negative") is non-one-time-access. Instance
// weights carry the cost matrix of §4.4.1 into every learner.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace otac::ml {

struct DatasetSplit;

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> feature_names);

  [[nodiscard]] std::size_t num_rows() const noexcept { return labels_.size(); }
  [[nodiscard]] std::size_t num_features() const noexcept {
    return feature_names_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return labels_.empty(); }

  [[nodiscard]] const std::vector<std::string>& feature_names() const noexcept {
    return feature_names_;
  }

  /// Append a row. `features` must match num_features(); label is 0/1;
  /// weight must be positive.
  void add_row(std::span<const float> features, int label, float weight = 1.0F);

  [[nodiscard]] std::span<const float> row(std::size_t i) const noexcept {
    return {values_.data() + i * num_features(), num_features()};
  }
  [[nodiscard]] int label(std::size_t i) const noexcept { return labels_[i]; }
  [[nodiscard]] float weight(std::size_t i) const noexcept { return weights_[i]; }
  [[nodiscard]] std::span<const float> weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] float value(std::size_t i, std::size_t f) const noexcept {
    return values_[i * num_features() + f];
  }

  [[nodiscard]] std::span<const int> labels() const noexcept { return labels_; }

  /// Weighted count of positive/total (used for priors and Gini roots).
  [[nodiscard]] double positive_weight() const noexcept;
  [[nodiscard]] double total_weight() const noexcept;

  /// New dataset keeping only the given rows (indices may repeat —
  /// bootstrap sampling uses that).
  [[nodiscard]] Dataset subset_rows(std::span<const std::size_t> indices) const;

  /// New dataset keeping only the given feature columns, in that order.
  [[nodiscard]] Dataset subset_features(
      std::span<const std::size_t> features) const;

  /// Replace every weight (e.g. boosting reweighting). Must match rows.
  void set_weights(std::span<const float> weights);

  /// Apply the paper's cost matrix: multiply the weight of every negative
  /// (non-one-time) row by v, so false positives cost v (§4.4.1 Table 4).
  void apply_cost_matrix(double false_positive_cost);

  /// Deterministic shuffled split: fraction*(n) rows into test.
  [[nodiscard]] DatasetSplit train_test_split(double test_fraction,
                                              Rng& rng) const;

  /// K-fold partition of row indices (shuffled, near-equal sizes).
  [[nodiscard]] std::vector<std::vector<std::size_t>> kfold_indices(
      std::size_t folds, Rng& rng) const;

 private:
  std::vector<std::string> feature_names_;
  std::vector<float> values_;  // row-major
  std::vector<int> labels_;
  std::vector<float> weights_;
};

struct DatasetSplit {
  Dataset train;
  Dataset test;
};

}  // namespace otac::ml
