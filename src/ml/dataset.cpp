#include "ml/dataset.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace otac::ml {

Dataset::Dataset(std::vector<std::string> feature_names)
    : feature_names_(std::move(feature_names)) {
  if (feature_names_.empty()) {
    throw std::invalid_argument("Dataset: need at least one feature");
  }
}

void Dataset::add_row(std::span<const float> features, int label,
                      float weight) {
  if (features.size() != num_features()) {
    throw std::invalid_argument("Dataset: feature arity mismatch");
  }
  if (label != 0 && label != 1) {
    throw std::invalid_argument("Dataset: label must be 0 or 1");
  }
  if (!(weight > 0.0F)) {
    throw std::invalid_argument("Dataset: weight must be positive");
  }
  values_.insert(values_.end(), features.begin(), features.end());
  labels_.push_back(label);
  weights_.push_back(weight);
}

double Dataset::positive_weight() const noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == 1) total += static_cast<double>(weights_[i]);
  }
  return total;
}

double Dataset::total_weight() const noexcept {
  return std::accumulate(weights_.begin(), weights_.end(), 0.0);
}

Dataset Dataset::subset_rows(std::span<const std::size_t> indices) const {
  Dataset out{feature_names_};
  out.values_.reserve(indices.size() * num_features());
  out.labels_.reserve(indices.size());
  out.weights_.reserve(indices.size());
  for (const std::size_t i : indices) {
    if (i >= num_rows()) throw std::out_of_range("Dataset: row index");
    const auto r = row(i);
    out.values_.insert(out.values_.end(), r.begin(), r.end());
    out.labels_.push_back(labels_[i]);
    out.weights_.push_back(weights_[i]);
  }
  return out;
}

Dataset Dataset::subset_features(std::span<const std::size_t> features) const {
  std::vector<std::string> names;
  names.reserve(features.size());
  for (const std::size_t f : features) {
    if (f >= num_features()) throw std::out_of_range("Dataset: feature index");
    names.push_back(feature_names_[f]);
  }
  Dataset out{std::move(names)};
  out.values_.reserve(num_rows() * features.size());
  for (std::size_t i = 0; i < num_rows(); ++i) {
    for (const std::size_t f : features) {
      out.values_.push_back(value(i, f));
    }
  }
  out.labels_ = labels_;
  out.weights_ = weights_;
  return out;
}

void Dataset::set_weights(std::span<const float> weights) {
  if (weights.size() != num_rows()) {
    throw std::invalid_argument("Dataset: weight count mismatch");
  }
  weights_.assign(weights.begin(), weights.end());
}

void Dataset::apply_cost_matrix(double false_positive_cost) {
  if (!(false_positive_cost > 0.0)) {
    throw std::invalid_argument("Dataset: cost must be positive");
  }
  for (std::size_t i = 0; i < num_rows(); ++i) {
    if (labels_[i] == 0) {
      weights_[i] =
          static_cast<float>(static_cast<double>(weights_[i]) *
                             false_positive_cost);
    }
  }
}

DatasetSplit Dataset::train_test_split(double test_fraction, Rng& rng) const {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    throw std::invalid_argument("Dataset: test_fraction must be in (0,1)");
  }
  std::vector<std::size_t> order(num_rows());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  const auto test_count = static_cast<std::size_t>(
      static_cast<double>(num_rows()) * test_fraction);
  const std::span test_span{order.data(), test_count};
  const std::span train_span{order.data() + test_count,
                             order.size() - test_count};
  return DatasetSplit{subset_rows(train_span), subset_rows(test_span)};
}

std::vector<std::vector<std::size_t>> Dataset::kfold_indices(std::size_t folds,
                                                             Rng& rng) const {
  if (folds < 2 || folds > num_rows()) {
    throw std::invalid_argument("Dataset: invalid fold count");
  }
  std::vector<std::size_t> order(num_rows());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  std::vector<std::vector<std::size_t>> out(folds);
  for (std::size_t i = 0; i < order.size(); ++i) {
    out[i % folds].push_back(order[i]);
  }
  return out;
}

}  // namespace otac::ml
