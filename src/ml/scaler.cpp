#include "ml/scaler.h"

#include <cmath>
#include <stdexcept>

namespace otac::ml {

void StandardScaler::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("StandardScaler: empty data");
  const std::size_t d = data.num_features();
  mean_.assign(d, 0.0);
  stddev_.assign(d, 0.0);
  double total_weight = 0.0;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const double w = data.weight(i);
    total_weight += w;
    const auto row = data.row(i);
    for (std::size_t f = 0; f < d; ++f) {
      mean_[f] += w * static_cast<double>(row[f]);
    }
  }
  for (std::size_t f = 0; f < d; ++f) mean_[f] /= total_weight;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    const double w = data.weight(i);
    const auto row = data.row(i);
    for (std::size_t f = 0; f < d; ++f) {
      const double delta = static_cast<double>(row[f]) - mean_[f];
      stddev_[f] += w * delta * delta;
    }
  }
  for (std::size_t f = 0; f < d; ++f) {
    stddev_[f] = std::sqrt(stddev_[f] / total_weight);
    if (stddev_[f] < 1e-12) stddev_[f] = 1.0;  // constant feature
  }
}

void StandardScaler::transform(std::span<const float> row,
                               std::vector<float>& out) const {
  if (row.size() != mean_.size()) {
    throw std::invalid_argument("StandardScaler: arity mismatch");
  }
  out.resize(row.size());
  for (std::size_t f = 0; f < row.size(); ++f) {
    out[f] = static_cast<float>((static_cast<double>(row[f]) - mean_[f]) /
                                stddev_[f]);
  }
}

Dataset StandardScaler::transform(const Dataset& data) const {
  Dataset out{data.feature_names()};
  std::vector<float> buffer;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    transform(data.row(i), buffer);
    out.add_row(buffer, data.label(i), data.weight(i));
  }
  return out;
}

}  // namespace otac::ml
