#include "net/protocol.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <stdexcept>

// Wire integrity, not a golden fingerprint: the frame CRC guards payloads
// against truncation and bit rot in transit, the same duty util/crc32.h
// already performs for checkpoint sections (golden sequences keep using
// util/fnv.h). src/net/protocol.cpp is therefore on the golden-hash
// rule's CRC exemption list next to core/checkpoint.cpp.
#include "util/crc32.h"

namespace otac::net {

namespace {

[[noreturn]] void fail(std::uint64_t frame_number, const char* format, ...) {
  char message[160];
  std::snprintf(message, sizeof(message), "frame %llu: ",
                static_cast<unsigned long long>(frame_number));
  va_list args;
  va_start(args, format);
  std::vsnprintf(message + std::strlen(message),
                 sizeof(message) - std::strlen(message), format, args);
  va_end(args);
  throw std::runtime_error(message);
}

}  // namespace

const char* frame_type_name(FrameType type) noexcept {
  switch (type) {
    case FrameType::get_request: return "get";
    case FrameType::put_request: return "put";
    case FrameType::result: return "result";
    case FrameType::stats_request: return "stats";
    case FrameType::summary: return "summary";
    case FrameType::report_request: return "report-request";
    case FrameType::report: return "report";
    case FrameType::shutdown_request: return "shutdown";
    case FrameType::shutdown_ack: return "shutdown-ack";
    case FrameType::error: return "error";
  }
  return "unknown";
}

void put_u16(std::uint8_t* out, std::uint16_t v) noexcept {
  out[0] = static_cast<std::uint8_t>(v & 0xFFU);
  out[1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u32(std::uint8_t* out, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFU);
  }
}

void put_u64(std::uint8_t* out, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFU);
  }
}

void put_f64(std::uint8_t* out, double v) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

std::uint16_t read_u16(const std::uint8_t* in) noexcept {
  return static_cast<std::uint16_t>(in[0] | (in[1] << 8));
}

std::uint32_t read_u32(const std::uint8_t* in) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}

std::uint64_t read_u64(const std::uint8_t* in) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}

double read_f64(const std::uint8_t* in) noexcept {
  const std::uint64_t bits = read_u64(in);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void encode_header(std::uint8_t* out, FrameType type, std::uint64_t sequence,
                   std::span<const std::uint8_t> payload) noexcept {
  put_u32(out, kMagic);
  put_u16(out + 4, kProtocolVersion);
  put_u16(out + 6, static_cast<std::uint16_t>(type));
  put_u64(out + 8, sequence);
  put_u32(out + 16, static_cast<std::uint32_t>(payload.size()));
  put_u32(out + 20, payload.empty()
                        ? 0
                        : crc32(payload.data(), payload.size()));
}

std::vector<std::uint8_t> encode_frame(FrameType type, std::uint64_t sequence,
                                       std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> frame(kHeaderBytes + payload.size());
  encode_header(frame.data(), type, sequence, payload);
  if (!payload.empty()) {
    std::memcpy(frame.data() + kHeaderBytes, payload.data(), payload.size());
  }
  return frame;
}

void encode_get_frame(std::uint8_t* out, std::uint64_t sequence,
                      const GetPayload& payload) noexcept {
  std::uint8_t* body = out + kHeaderBytes;
  put_u64(body, payload.index);
  put_u64(body + 8, static_cast<std::uint64_t>(payload.time_seconds));
  put_u32(body + 16, payload.photo);
  body[20] = payload.terminal;
  body[21] = body[22] = body[23] = 0;
  encode_header(out, FrameType::get_request, sequence,
                {body, kGetPayloadBytes});
}

void encode_put_frame(std::uint8_t* out, std::uint64_t sequence,
                      const PutPayload& payload) noexcept {
  std::uint8_t* body = out + kHeaderBytes;
  put_u64(body, static_cast<std::uint64_t>(payload.time_seconds));
  put_u32(body + 8, payload.photo);
  put_u32(body + 12, 0);
  encode_header(out, FrameType::put_request, sequence,
                {body, kPutPayloadBytes});
}

void encode_result_frame(std::uint8_t* out, std::uint64_t sequence,
                         const ResultPayload& payload) noexcept {
  std::uint8_t* body = out + kHeaderBytes;
  body[0] = static_cast<std::uint8_t>(payload.status);
  body[1] = payload.degraded;
  for (int i = 2; i < 8; ++i) body[i] = 0;
  put_f64(body + 8, payload.latency_us);
  encode_header(out, FrameType::result, sequence, {body, kResultPayloadBytes});
}

void encode_summary_frame(std::uint8_t* out, std::uint64_t sequence,
                          const SummaryPayload& payload) noexcept {
  std::uint8_t* body = out + kHeaderBytes;
  put_u64(body, payload.requests);
  put_u64(body + 8, payload.hits);
  put_u64(body + 16, payload.insertions);
  put_u64(body + 24, payload.rejected);
  put_u64(body + 32, payload.evictions);
  put_u64(body + 40, payload.shed_requests);
  put_u64(body + 48, payload.degraded_admits);
  put_u64(body + 56, payload.overload_transitions);
  put_u64(body + 64, payload.retrain_timeouts);
  put_u64(body + 72, payload.trainings);
  put_u64(body + 80, payload.eviction_hash);
  put_f64(body + 88, payload.file_hit_rate);
  put_f64(body + 96, payload.byte_hit_rate);
  put_f64(body + 104, payload.mean_latency_us);
  encode_header(out, FrameType::summary, sequence,
                {body, kSummaryPayloadBytes});
}

FrameHeader decode_header(std::span<const std::uint8_t> bytes,
                          std::uint64_t frame_number) {
  if (bytes.size() < kHeaderBytes) {
    fail(frame_number, "truncated header (got %zu of %zu bytes)",
         bytes.size(), kHeaderBytes);
  }
  const std::uint32_t magic = read_u32(bytes.data());
  if (magic != kMagic) {
    fail(frame_number, "bad magic 0x%08X", magic);
  }
  const std::uint16_t version = read_u16(bytes.data() + 4);
  if (version != kProtocolVersion) {
    fail(frame_number, "unsupported protocol version %u (expected %u)",
         version, kProtocolVersion);
  }
  const std::uint16_t raw_type = read_u16(bytes.data() + 6);
  if (raw_type < static_cast<std::uint16_t>(FrameType::get_request) ||
      raw_type > static_cast<std::uint16_t>(FrameType::error)) {
    fail(frame_number, "unknown frame type %u", raw_type);
  }
  FrameHeader header;
  header.type = static_cast<FrameType>(raw_type);
  header.sequence = read_u64(bytes.data() + 8);
  header.payload_size = read_u32(bytes.data() + 16);
  header.payload_crc = read_u32(bytes.data() + 20);
  if (header.payload_size > kMaxPayloadBytes) {
    // Rejected from the header alone: no payload buffer has been
    // allocated or read at this point, so a hostile length cannot force
    // an allocation.
    fail(frame_number, "oversized payload %u bytes (max %u)",
         header.payload_size, kMaxPayloadBytes);
  }
  return header;
}

void verify_payload(const FrameHeader& header,
                    std::span<const std::uint8_t> payload,
                    std::uint64_t frame_number) {
  if (payload.size() < header.payload_size) {
    fail(frame_number, "truncated payload (got %zu of %u bytes)",
         payload.size(), header.payload_size);
  }
  const std::uint32_t computed =
      header.payload_size == 0
          ? 0
          : crc32(payload.data(), header.payload_size);
  if (computed != header.payload_crc) {
    fail(frame_number, "payload CRC mismatch (got 0x%08X, expected 0x%08X)",
         computed, header.payload_crc);
  }
}

namespace {

void check_payload_size(std::span<const std::uint8_t> payload,
                        std::uint32_t expected, const char* type_name,
                        std::uint64_t frame_number) {
  if (payload.size() != expected) {
    fail(frame_number, "%s payload is %zu bytes (expected %u)", type_name,
         payload.size(), expected);
  }
}

}  // namespace

void check_client_frame(const FrameHeader& header,
                        std::uint64_t frame_number) {
  std::uint32_t expected = 0;
  switch (header.type) {
    case FrameType::get_request: expected = kGetPayloadBytes; break;
    case FrameType::put_request: expected = kPutPayloadBytes; break;
    case FrameType::stats_request:
    case FrameType::report_request:
    case FrameType::shutdown_request:
      expected = 0;
      break;
    case FrameType::result:
    case FrameType::summary:
    case FrameType::report:
    case FrameType::shutdown_ack:
    case FrameType::error:
      fail(frame_number, "unexpected %s frame from client",
           frame_type_name(header.type));
  }
  if (header.payload_size != expected) {
    fail(frame_number, "%s payload is %u bytes (expected %u)",
         frame_type_name(header.type), header.payload_size, expected);
  }
}

GetPayload decode_get(std::span<const std::uint8_t> payload,
                      std::uint64_t frame_number) {
  check_payload_size(payload, kGetPayloadBytes, "get", frame_number);
  GetPayload out;
  out.index = read_u64(payload.data());
  out.time_seconds = static_cast<std::int64_t>(read_u64(payload.data() + 8));
  out.photo = read_u32(payload.data() + 16);
  out.terminal = payload[20];
  return out;
}

PutPayload decode_put(std::span<const std::uint8_t> payload,
                      std::uint64_t frame_number) {
  check_payload_size(payload, kPutPayloadBytes, "put", frame_number);
  PutPayload out;
  out.time_seconds = static_cast<std::int64_t>(read_u64(payload.data()));
  out.photo = read_u32(payload.data() + 8);
  return out;
}

ResultPayload decode_result(std::span<const std::uint8_t> payload,
                            std::uint64_t frame_number) {
  check_payload_size(payload, kResultPayloadBytes, "result", frame_number);
  if (payload[0] > static_cast<std::uint8_t>(ResultStatus::put_ok)) {
    fail(frame_number, "unknown result status %u", payload[0]);
  }
  ResultPayload out;
  out.status = static_cast<ResultStatus>(payload[0]);
  out.degraded = payload[1];
  out.latency_us = read_f64(payload.data() + 8);
  return out;
}

SummaryPayload decode_summary(std::span<const std::uint8_t> payload,
                              std::uint64_t frame_number) {
  check_payload_size(payload, kSummaryPayloadBytes, "summary", frame_number);
  SummaryPayload out;
  out.requests = read_u64(payload.data());
  out.hits = read_u64(payload.data() + 8);
  out.insertions = read_u64(payload.data() + 16);
  out.rejected = read_u64(payload.data() + 24);
  out.evictions = read_u64(payload.data() + 32);
  out.shed_requests = read_u64(payload.data() + 40);
  out.degraded_admits = read_u64(payload.data() + 48);
  out.overload_transitions = read_u64(payload.data() + 56);
  out.retrain_timeouts = read_u64(payload.data() + 64);
  out.trainings = read_u64(payload.data() + 72);
  out.eviction_hash = read_u64(payload.data() + 80);
  out.file_hit_rate = read_f64(payload.data() + 88);
  out.byte_hit_rate = read_f64(payload.data() + 96);
  out.mean_latency_us = read_f64(payload.data() + 104);
  return out;
}

std::optional<Frame> FrameParser::next() {
  if (offset_ == buffer_.size()) return std::nullopt;
  const std::uint64_t number = frames_ + 1;
  const FrameHeader header =
      decode_header(buffer_.subspan(offset_), number);
  const std::size_t body_begin = offset_ + kHeaderBytes;
  const std::span<const std::uint8_t> rest = buffer_.subspan(body_begin);
  verify_payload(header, rest, number);
  Frame frame;
  frame.header = header;
  frame.payload.assign(rest.begin(), rest.begin() + header.payload_size);
  offset_ = body_begin + header.payload_size;
  ++frames_;
  return frame;
}

}  // namespace otac::net
