#include "net/daemon.h"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cachesim/cache_policy.h"
#include "core/history_table.h"
#include "core/model_slot.h"
#include "core/run_metrics.h"
#include "core/serving_core.h"
#include "core/shard_queue.h"
#include "core/sharded_cache.h"
#include "core/trainer.h"
#include "core/trainer_watchdog.h"
#include "ml/compiled_tree.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "storage/latency_model.h"
#include "util/failpoint.h"

namespace otac::net {

namespace {

/// Protocol-violation errors carry the 1-based frame position, matching
/// the codec's own messages (net/protocol.cpp).
[[noreturn]] void fail_frame(std::uint64_t frame_number,
                             const std::string& text) {
  throw std::runtime_error("frame " + std::to_string(frame_number) + ": " +
                           text);
}

/// One client socket plus the lock serializing reply writes to it: the
/// owning reader thread and any shard worker may answer concurrently.
struct Connection {
  UniqueFd fd;
  std::mutex write_mutex;
};

/// One in-flight request, parked in its shard's inbound queue between the
/// connection reader and the shard worker.
struct Envelope {
  std::shared_ptr<Connection> conn;
  std::uint64_t sequence = 0;
  std::uint64_t index = 0;  ///< trace request index (GET only)
  Request request{};
  bool is_put = false;
};

/// Bounded MPSC ring of envelopes for one shard. Push blocks while full
/// (TCP backpressure) unless the caller opts for try_push (RETRY replies).
/// Stop is drain-then-exit: pop_batch keeps returning queued work after
/// stop() and yields 0 only once the ring is empty, so a graceful stop
/// never discards accepted requests.
class InboundQueue {
 public:
  explicit InboundQueue(std::size_t capacity) : ring_(capacity) {}

  bool push(Envelope&& envelope) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return count_ < ring_.size() || stopped_; });
    if (stopped_) return false;
    ring_[(head_ + count_) % ring_.size()] = std::move(envelope);
    ++count_;
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; on failure the envelope is left intact.
  bool try_push(Envelope&& envelope) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_ || count_ == ring_.size()) return false;
    ring_[(head_ + count_) % ring_.size()] = std::move(envelope);
    ++count_;
    not_empty_.notify_one();
    return true;
  }

  /// Block until at least one envelope (or a drained stop), then hand out
  /// up to `max` in arrival order and mark the worker busy until
  /// mark_idle(). Returns 0 only when stopped and empty.
  std::size_t pop_batch(Envelope* out, std::size_t max) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return count_ > 0 || stopped_; });
    const std::size_t gathered = std::min(count_, max);
    for (std::size_t i = 0; i < gathered; ++i) {
      out[i] = std::move(ring_[head_]);
      head_ = (head_ + 1) % ring_.size();
    }
    count_ -= gathered;
    if (gathered > 0) {
      busy_ = true;
      not_full_.notify_all();
    }
    return gathered;
  }

  void mark_idle() {
    const std::lock_guard<std::mutex> lock(mutex_);
    busy_ = false;
    if (count_ == 0) idle_.notify_all();
  }

  /// Block until the queue is empty AND the worker is parked — the
  /// retrain-barrier quiesce point. Only meaningful while dispatch is
  /// blocked (the caller holds the dispatch lock exclusively).
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [&] { return count_ == 0 && !busy_; });
  }

  void stop() {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::condition_variable idle_;
  std::vector<Envelope> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool busy_ = false;
  bool stopped_ = false;
};

/// Everything one shard touches on the request path — the daemon-side
/// twin of the replay's ShardState (core/sharded_cache.cpp), plus the
/// inbound queue and worker thread that replace the replay's index lists.
struct Shard {
  explicit Shard(std::size_t queue_capacity) : inbound(queue_capacity) {}

  InboundQueue inbound;
  std::thread worker;
  std::unique_ptr<CachePolicy> policy;
  std::unique_ptr<ServingCore> core;      // proposal only
  std::unique_ptr<DailyTrainer> sampler;  // proposal only
  std::unique_ptr<ShardQueue> fluid;      // proposal + overload only
  std::unique_ptr<obs::MetricsRegistry> registry;
  obs::LatencyRecorder recorder;
  obs::FixedHistogram* batch_sizes = nullptr;   // proposal only
  obs::FixedHistogram* gather_sizes = nullptr;  // physical gather width
  ml::CompiledTree compiled;  // per-shard model snapshot (proposal only)
  const ml::CompiledTree* tree = nullptr;
  std::uint64_t model_epoch = std::numeric_limits<std::uint64_t>::max();
  CacheStats stats;
};

}  // namespace

struct Daemon::Impl {
  Impl(const IntelligentCache& system_in, DaemonConfig config_in)
      : system(&system_in),
        trace(&system_in.trace()),
        oracle(&system_in.oracle()),
        config(std::move(config_in)) {}

  const IntelligentCache* system;
  const Trace* trace;
  const NextAccessInfo* oracle;
  DaemonConfig config;

  bool is_proposal = false;
  bool classified_path = false;
  std::size_t gather_max = ServingCore::kAdmissionBatchCapacity;
  LatencyModel latency{LatencyConfig{}};
  double hit_latency_us = 0.0;
  double miss_latency_us = 0.0;
  std::size_t model_arity = 0;

  RunResult result;
  std::vector<std::unique_ptr<Shard>> shards;

  // The one shared mutable serving object (seqlock; workers reload on the
  // epoch bump a barrier publishes) plus the trainer side, which only the
  // thread holding the dispatch lock exclusively ever touches.
  ModelSlot model;
  std::atomic<std::uint64_t> model_epoch{0};
  std::unique_ptr<DailyTrainer> trainer;
  std::unique_ptr<TrainerWatchdog> watchdog;
  DegradationCounters trainer_degradation;
  obs::MetricsRegistry global_registry;
  obs::FixedHistogram* fit_seconds = nullptr;
  obs::MetricsRegistry::Counter fits = nullptr;
  obs::MetricsRegistry::Counter fit_skipped = nullptr;
  obs::MetricsRegistry::Counter models_published = nullptr;
  obs::MetricsRegistry::Counter samples_drained = nullptr;
  obs::MetricsRegistry::Counter compiled_tree_swaps = nullptr;

  // Retrain schedule, precomputed exactly as the replay does. Readers
  // dispatch under a shared lock; a barrier takes it exclusively, waits
  // for every shard queue to drain, retrains, and advances next_trigger.
  std::vector<std::uint64_t> triggers;
  std::atomic<std::size_t> next_trigger{0};
  std::shared_mutex dispatch_mutex;

  UniqueFd listener;
  std::uint16_t bound_port = 0;
  std::thread acceptor;
  std::mutex connections_mutex;
  std::vector<std::shared_ptr<Connection>> connections;
  std::vector<std::thread> connection_threads;

  std::atomic<bool> stop_flag{false};
  bool started = false;
  std::once_flag stop_once;
  std::atomic<bool> finalized{false};
  std::mutex shutdown_mutex;
  std::condition_variable shutdown_cv;
  bool shutdown_requested = false;

  // Transport counters (DaemonWireStats); relaxed — they order nothing.
  std::atomic<std::uint64_t> connections_total{0};
  std::atomic<std::uint64_t> frames_received{0};
  std::atomic<std::uint64_t> frames_sent{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> retry_replies{0};
  std::atomic<std::uint64_t> shed_replies{0};
  std::atomic<std::uint64_t> get_requests{0};
  std::atomic<std::uint64_t> put_requests{0};

  void start();
  void accept_loop();
  void serve_connection(const std::shared_ptr<Connection>& conn);
  bool dispatch_frame(const std::shared_ptr<Connection>& conn,
                      const FrameHeader& header,
                      std::span<const std::uint8_t> payload,
                      std::uint64_t frame_number);
  void enqueue(Envelope&& envelope);
  void maybe_barrier(std::uint64_t index);
  void quiesce_locked();
  void flush_barriers_locked();
  void run_barrier(std::uint64_t trigger);
  void worker_loop(Shard& shard);
  void process_batch(Shard& shard, Envelope* batch, std::size_t count);
  void serve_simple(Shard& shard, Envelope& envelope);
  void serve_put(Shard& shard, Envelope& envelope);
  bool insert_with_ssd_retry(Shard& shard, const Request& request,
                             const PhotoMeta& photo);
  void send_frame(Connection& conn, const std::uint8_t* data,
                  std::size_t size);
  void send_result(Envelope& envelope, ResultStatus status, bool degraded);
  void send_error(Connection& conn, const std::string& text);
  SummaryPayload build_summary_locked();
  void assemble_result_locked();
  void populate_registries();
  void populate_wire_metrics();
  obs::MetricsSnapshot merged_snapshot_now();
  [[nodiscard]] double mean_latency_for(double hit_rate) const;
  void stop();
};

void Daemon::Impl::start() {
  const RunConfig& run = config.run;
  if (run.capacity_bytes == 0) {
    throw std::invalid_argument("Daemon: zero capacity");
  }
  const std::size_t shard_count = run.shards;
  if (shard_count == 0) {
    throw std::invalid_argument("Daemon: zero shards");
  }
  const std::uint64_t shard_capacity = run.capacity_bytes / shard_count;
  if (shard_capacity == 0) {
    throw std::invalid_argument(
        "Daemon: capacity splits to zero bytes per shard");
  }

  // Preamble mirror of ShardedCache::run: criteria/cost are global
  // properties of (trace, capacity), shared by every shard.
  is_proposal = run.mode == AdmissionMode::proposal;
  const bool needs_criteria =
      is_proposal || run.mode == AdmissionMode::ideal;
  if (needs_criteria) {
    const double h = run.hit_rate_estimate
                         ? *run.hit_rate_estimate
                         : system->estimate_hit_rate(run.capacity_bytes);
    result.criteria = compute_criteria(*trace, *oracle, run.capacity_bytes, h,
                                       run.ota.criteria_iterations);
    if (run.policy == PolicyKind::lirs) {
      result.criteria.m =
          lirs_criteria(result.criteria.m, run.lirs_lir_fraction);
    }
    result.cost_v = system->cost_v_for(run.capacity_bytes, run.ota);
  }
  classified_path = needs_criteria;
  latency = LatencyModel{run.latency};
  hit_latency_us = latency.request_latency_us(true, classified_path);
  miss_latency_us = latency.request_latency_us(false, classified_path);

  ServingConfig serving;
  std::size_t history_slice = 0;
  OtaConfig sampler_ota = run.ota;
  if (is_proposal) {
    serving.feature_subset = run.ota.feature_subset;
    serving.m = result.criteria.m;
    serving.admit_before_first_model = run.ota.admit_before_first_model;
    const std::size_t history_total = history_table_capacity(
        result.criteria.m, result.criteria.h, result.criteria.p,
        run.ota.history_table_factor);
    history_slice = history_total / shard_count;
    if (history_slice == 0 && history_total > 0) history_slice = 1;
    const int rate = run.ota.sample_records_per_minute;
    sampler_ota.sample_records_per_minute =
        rate == 0 ? 0 : std::max(1, rate / static_cast<int>(shard_count));
    model_arity = run.ota.feature_subset.empty()
                      ? FeatureExtractor::kFeatureCount
                      : run.ota.feature_subset.size();
  }

  gather_max = std::clamp<std::size_t>(config.gather_max, 1,
                                       ServingCore::kAdmissionBatchCapacity);
  const std::size_t queue_capacity =
      std::max<std::size_t>(1, config.queue_capacity);

  for (std::size_t s = 0; s < shard_count; ++s) {
    // Cold: per-shard construction, once per daemon.
    // otac-lint: allow(hotpath-alloc)
    shards.push_back(std::make_unique<Shard>(queue_capacity));
    Shard& shard = *shards.back();
    shard.policy =
        make_policy(run.policy, shard_capacity, run.lirs_lir_fraction);
    // otac-lint: allow(hotpath-alloc)
    shard.registry = std::make_unique<obs::MetricsRegistry>();
    shard.recorder = obs::LatencyRecorder{
        shard.registry->histogram(kLatencyHistogramName,
                                  LatencyModel::histogram_bounds_us()),
        hit_latency_us, miss_latency_us};
    shard.gather_sizes = shard.registry->histogram(
        "daemon.batch_gather_size", admission_batch_histogram_bounds());
    if (is_proposal) {
      // otac-lint: allow(hotpath-alloc)
      shard.core = std::make_unique<ServingCore>(trace->catalog, *oracle,
                                                 serving, history_slice);
      shard.core->bind_metrics(*shard.registry);
      // otac-lint: allow(hotpath-alloc)
      shard.sampler = std::make_unique<DailyTrainer>(
          *oracle, sampler_ota, result.criteria.m, result.cost_v);
      shard.batch_sizes = shard.registry->histogram(
          kAdmissionBatchHistogramName, admission_batch_histogram_bounds());
      if (run.resilience.overload.enabled) {
        // otac-lint: allow(hotpath-alloc)
        shard.fluid = std::make_unique<ShardQueue>(run.resilience.overload);
      }
    }
  }
  for (const auto& shard : shards) {
    CacheStats* stats = &shard->stats;  // shards never reallocates now
    shard->policy->set_eviction_callback(
        [stats](PhotoId key, std::uint32_t size) {
          stats->note_eviction(key, size);
        });
  }

  // otac-lint: allow(hotpath-alloc)
  trainer = std::make_unique<DailyTrainer>(*oracle, run.ota,
                                           result.criteria.m, result.cost_v);
  // otac-lint: allow(hotpath-alloc)
  watchdog = std::make_unique<TrainerWatchdog>(*trainer,
                                               run.resilience.watchdog);
  fit_seconds = global_registry.histogram(kFitHistogramName,
                                          duration_histogram_bounds_s());
  fits = global_registry.counter("trainer.fits");
  fit_skipped = global_registry.counter("trainer.fit_skipped");
  models_published = global_registry.counter("trainer.models_published");
  samples_drained = global_registry.counter("trainer.samples_drained");
  compiled_tree_swaps = global_registry.counter("trainer.compiled_tree_swaps");
  if (is_proposal) triggers = retrain_trigger_indices(*trace, run.ota);

  listener = tcp_listen(config.host, config.port);
  bound_port = local_port(listener.get());
  for (const auto& shard : shards) {
    Shard* raw = shard.get();
    shard->worker = std::thread([this, raw] { worker_loop(*raw); });
  }
  acceptor = std::thread([this] { accept_loop(); });
  started = true;
}

void Daemon::Impl::accept_loop() {
  while (!stop_flag.load(std::memory_order_relaxed)) {
    pollfd waiter{};
    waiter.fd = listener.get();
    waiter.events = POLLIN;
    const int ready = ::poll(&waiter, 1, 100);
    if (ready <= 0) continue;  // timeout or EINTR; bounded by the stop flag
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd < 0) continue;
    if (stop_flag.load(std::memory_order_relaxed)) {
      UniqueFd{fd}.reset();
      break;
    }
    // Cold: per-connection setup, not the per-frame path.
    // otac-lint: allow(hotpath-alloc)
    auto connection = std::make_shared<Connection>();
    connection->fd = UniqueFd{fd};
    connections_total.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(connections_mutex);
    // otac-lint: allow(hotpath-alloc)
    connections.push_back(connection);
    // otac-lint: allow(hotpath-alloc)
    connection_threads.emplace_back(
        [this, connection] { serve_connection(connection); });
  }
}

void Daemon::Impl::serve_connection(const std::shared_ptr<Connection>& conn) {
  // Client frames carry fixed-size payloads (checked against the header
  // before the payload read), so one small stack buffer serves the whole
  // connection — the inbound path allocates nothing per frame.
  std::array<std::uint8_t, kHeaderBytes> head{};
  std::array<std::uint8_t, 64> body{};
  static_assert(kGetPayloadBytes <= 64 && kPutPayloadBytes <= 64);
  std::uint64_t frames = 0;
  bool running = true;
  while (running && !stop_flag.load(std::memory_order_relaxed)) {
    const std::size_t got =
        recv_exact(conn->fd.get(), head.data(), head.size());
    if (got == 0) break;  // clean EOF at a frame boundary
    const std::uint64_t number = frames + 1;
    try {
      const FrameHeader header = decode_header(
          std::span<const std::uint8_t>(head.data(), got), number);
      check_client_frame(header, number);
      std::size_t body_got = 0;
      if (header.payload_size > 0) {
        body_got = recv_exact(conn->fd.get(), body.data(),
                              header.payload_size);
      }
      verify_payload(
          header, std::span<const std::uint8_t>(body.data(), body_got),
          number);
      frames_received.fetch_add(1, std::memory_order_relaxed);
      ++frames;
      running = dispatch_frame(
          conn, header,
          std::span<const std::uint8_t>(body.data(), header.payload_size),
          number);
    } catch (const std::exception& error) {
      // Protocol violation: answer with the exact decode error, then drop
      // the connection — resynchronizing a corrupt byte stream is not
      // worth guessing at frame boundaries.
      protocol_errors.fetch_add(1, std::memory_order_relaxed);
      send_error(*conn, error.what());
      running = false;
    }
  }
  conn->fd.shutdown_both();
}

bool Daemon::Impl::dispatch_frame(const std::shared_ptr<Connection>& conn,
                                  const FrameHeader& header,
                                  std::span<const std::uint8_t> payload,
                                  std::uint64_t frame_number) {
  switch (header.type) {
    case FrameType::get_request: {
      const GetPayload get = decode_get(payload, frame_number);
      if (get.index >= trace->requests.size()) {
        fail_frame(frame_number,
                   "get index " + std::to_string(get.index) +
                       " out of range (trace has " +
                       std::to_string(trace->requests.size()) + " requests)");
      }
      const Request& request = trace->requests[get.index];
      if (get.photo != request.photo) {
        // The strongest seed/scale-mismatch canary available: client and
        // server must be generating the same trace.
        fail_frame(frame_number,
                   "get photo " + std::to_string(get.photo) +
                       " does not match trace request " +
                       std::to_string(get.index) + " (expected " +
                       std::to_string(request.photo) +
                       "; client/server seed or scale mismatch)");
      }
      get_requests.fetch_add(1, std::memory_order_relaxed);
      maybe_barrier(get.index);
      Envelope envelope;
      envelope.conn = conn;
      envelope.sequence = header.sequence;
      envelope.index = get.index;
      envelope.request = request;
      enqueue(std::move(envelope));
      return true;
    }
    case FrameType::put_request: {
      const PutPayload put = decode_put(payload, frame_number);
      if (put.photo >= trace->catalog.photo_count()) {
        fail_frame(frame_number,
                   "put photo " + std::to_string(put.photo) +
                       " out of range (catalog has " +
                       std::to_string(trace->catalog.photo_count()) +
                       " photos)");
      }
      put_requests.fetch_add(1, std::memory_order_relaxed);
      Envelope envelope;
      envelope.conn = conn;
      envelope.sequence = header.sequence;
      envelope.request.time = SimTime{put.time_seconds};
      envelope.request.photo = put.photo;
      envelope.is_put = true;
      enqueue(std::move(envelope));
      return true;
    }
    case FrameType::stats_request: {
      // End-of-stream snapshot: quiesce every shard, fire all remaining
      // scheduled retrain barriers, and summarize — the binary twin of
      // the replay's end-of-run totals.
      SummaryPayload summary;
      {
        const std::unique_lock<std::shared_mutex> lock(dispatch_mutex);
        quiesce_locked();
        flush_barriers_locked();
        summary = build_summary_locked();
      }
      std::array<std::uint8_t, kSummaryFrameBytes> frame{};
      encode_summary_frame(frame.data(), header.sequence, summary);
      send_frame(*conn, frame.data(), frame.size());
      return true;
    }
    case FrameType::report_request: {
      std::string json;
      {
        const std::unique_lock<std::shared_mutex> lock(dispatch_mutex);
        quiesce_locked();
        flush_barriers_locked();
        assemble_result_locked();
        json = result.obs.to_json();
      }
      const std::vector<std::uint8_t> frame = encode_frame(
          FrameType::report, header.sequence,
          std::span<const std::uint8_t>(
              reinterpret_cast<const std::uint8_t*>(json.data()),
              json.size()));
      send_frame(*conn, frame.data(), frame.size());
      return true;
    }
    case FrameType::shutdown_request: {
      const std::vector<std::uint8_t> frame =
          encode_frame(FrameType::shutdown_ack, header.sequence, {});
      send_frame(*conn, frame.data(), frame.size());
      {
        const std::lock_guard<std::mutex> lock(shutdown_mutex);
        shutdown_requested = true;
      }
      shutdown_cv.notify_all();
      return false;
    }
    case FrameType::result:
    case FrameType::summary:
    case FrameType::report:
    case FrameType::shutdown_ack:
    case FrameType::error:
      break;  // unreachable: check_client_frame already rejected these
  }
  fail_frame(frame_number, "unexpected frame type in dispatch");
}

void Daemon::Impl::enqueue(Envelope&& envelope) {
  const std::size_t s = shard_of_photo(envelope.request.photo, shards.size());
  // Shared dispatch lock: many readers enqueue concurrently; a retrain
  // barrier (or a stats/report snapshot) excludes them all.
  const std::shared_lock<std::shared_mutex> lock(dispatch_mutex);
  Shard& shard = *shards[s];
  if (config.retry_when_full) {
    if (!shard.inbound.try_push(std::move(envelope))) {
      retry_replies.fetch_add(1, std::memory_order_relaxed);
      send_result(envelope, ResultStatus::retry, false);
    }
    return;
  }
  // Blocking dispatch: queue-full pressure propagates to the client as
  // TCP backpressure. A false return means the daemon is stopping; the
  // request is dropped with the connection.
  (void)shard.inbound.push(std::move(envelope));
}

void Daemon::Impl::maybe_barrier(std::uint64_t index) {
  if (triggers.empty()) return;
  // Epoch rule, mirroring the replay (epoch_end = trigger + 1): the
  // barrier for trigger t fires before any request with index > t is
  // dispatched. The fast path is one relaxed-ish atomic read.
  std::size_t pending = next_trigger.load(std::memory_order_acquire);
  while (pending < triggers.size() && triggers[pending] < index) {
    {
      const std::unique_lock<std::shared_mutex> lock(dispatch_mutex);
      pending = next_trigger.load(std::memory_order_relaxed);
      if (pending < triggers.size() && triggers[pending] < index) {
        quiesce_locked();
        run_barrier(triggers[pending]);
        next_trigger.store(pending + 1, std::memory_order_release);
      }
    }
    pending = next_trigger.load(std::memory_order_acquire);
  }
}

void Daemon::Impl::quiesce_locked() {
  // Dispatch is excluded (unique lock held), so each queue drains
  // monotonically; after this loop every shard worker is parked.
  for (const auto& shard : shards) shard->inbound.wait_idle();
}

void Daemon::Impl::flush_barriers_locked() {
  std::size_t pending = next_trigger.load(std::memory_order_relaxed);
  while (pending < triggers.size()) {
    run_barrier(triggers[pending]);
    ++pending;
    next_trigger.store(pending, std::memory_order_release);
  }
}

void Daemon::Impl::run_barrier(std::uint64_t trigger) {
  // Cold: the retrain barrier, a mirror of the replay's barrier block
  // (core/sharded_cache.cpp) — drain shard sample buffers in shard order,
  // merge in trace order, supervise the fit, publish on success.
  std::vector<TrainingSample> drained;
  for (const auto& shard : shards) {
    const std::deque<TrainingSample>& buffer = shard->sampler->samples();
    drained.insert(drained.end(), buffer.begin(), buffer.end());
    shard->sampler->restore({}, shard->sampler->current_minute(),
                            shard->sampler->minute_count());
  }
  std::sort(drained.begin(), drained.end(),
            [](const TrainingSample& a, const TrainingSample& b) {
              return a.index < b.index;
            });
  *samples_drained += drained.size();
  const auto fit_started = std::chrono::steady_clock::now();
  const RetrainOutcome outcome = watchdog->retrain(
      std::move(drained), trigger, trace->requests[trigger].time);
  trainer_degradation.retrain_retries +=
      static_cast<std::uint64_t>(outcome.retries);
  switch (outcome.status) {
    case RetrainOutcome::Status::trained:
      ++*fits;
      if (validate_serving_model(*outcome.tree, model_arity)) {
        const ml::CompiledTree compiled =
            ml::CompiledTree::compile(*outcome.tree);
        if (ModelSlot::fits(compiled)) {
          model.store(compiled);
          ++result.trainings;
          ++*models_published;
          ++*compiled_tree_swaps;
          // Workers reload their snapshot at the next gather; they are
          // all parked right now, so the new generation is exactly the
          // replay's "serves requests from the next epoch on".
          model_epoch.fetch_add(1, std::memory_order_release);
        } else {
          ++trainer_degradation.rejected_models;
        }
      } else {
        ++trainer_degradation.rejected_models;
      }
      break;
    case RetrainOutcome::Status::skipped:
      ++*fit_skipped;
      break;
    case RetrainOutcome::Status::failed:
      ++trainer_degradation.retrain_failures;
      break;
    case RetrainOutcome::Status::timed_out:
    case RetrainOutcome::Status::busy:
      ++trainer_degradation.retrain_timeouts;
      break;
  }
  fit_seconds->add(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - fit_started)
                       .count());
  populate_registries();
  populate_degradation_metrics(global_registry, trainer_degradation);
  global_registry.set("trainer.trainings",
                      static_cast<std::uint64_t>(result.trainings));
  populate_wire_metrics();
  // otac-lint: allow(hotpath-alloc)
  result.obs.timeline.push_back(
      obs::BarrierSample{trigger, trace->requests[trigger].time.seconds,
                         merged_snapshot_now()});
}

void Daemon::Impl::worker_loop(Shard& shard) {
  // One gather's envelopes live on the worker stack; pop_batch hands out
  // at most gather_max (<= kAdmissionBatchCapacity) per call, and returns
  // 0 only once the daemon is stopping and the queue has drained.
  std::array<Envelope, ServingCore::kAdmissionBatchCapacity> batch;
  while (const std::size_t gathered =
             shard.inbound.pop_batch(batch.data(), gather_max)) {
    process_batch(shard, batch.data(), gathered);
    // Drop connection references before parking so clients that left
    // don't linger until the next gather overwrites the slots.
    for (std::size_t b = 0; b < gathered; ++b) batch[b] = Envelope{};
    shard.inbound.mark_idle();
  }
}

void Daemon::Impl::process_batch(Shard& shard, Envelope* batch,
                                 std::size_t count) {
  shard.gather_sizes->add(static_cast<double>(count));
  if (!is_proposal) {
    for (std::size_t b = 0; b < count; ++b) {
      if (batch[b].is_put) {
        serve_put(shard, batch[b]);
      } else {
        serve_simple(shard, batch[b]);
      }
    }
    return;
  }

  // Refresh the model snapshot when a barrier published a new generation
  // (the epoch counter only moves while this worker is parked, so one
  // seqlock load per generation, exactly like the replay's per-epoch
  // load).
  const std::uint64_t epoch = model_epoch.load(std::memory_order_acquire);
  if (epoch != shard.model_epoch) {
    shard.tree = model.load(shard.compiled) ? &shard.compiled : nullptr;
    shard.model_epoch = epoch;
  }

  const OverloadConfig& overload = config.run.resilience.overload;
  enum class Action : std::uint8_t { normal, degraded, shed, put };
  std::array<Action, ServingCore::kAdmissionBatchCapacity> action{};
  std::array<std::uint8_t, ServingCore::kAdmissionBatchCapacity> slot{};
  std::array<const PhotoMeta*, ServingCore::kAdmissionBatchCapacity> photos{};

  // Pass 1 — arrival order: overload gating through the fluid queue, then
  // the model-independent half (feature staging + training-sample offer)
  // for every Normal GET. Staging ahead of the sequential replay below is
  // the same reordering the replay's own batched loop performs — the
  // extractor never reads cache or history state.
  shard.core->begin_batch();
  std::size_t staged = 0;
  for (std::size_t b = 0; b < count; ++b) {
    const Envelope& envelope = batch[b];
    if (envelope.is_put) {
      action[b] = Action::put;
      continue;
    }
    const Request& request = trace->requests[envelope.index];
    const PhotoMeta& photo = trace->catalog.photo(request.photo);
    photos[b] = &photo;
    if (shard.fluid != nullptr) {
      if (OTAC_FAILPOINT_ACTIVE("chaos.flash_crowd")) {
        shard.fluid->inject(overload.flash_crowd_burst);
      }
      const OverloadState pressure = shard.fluid->on_request(
          static_cast<double>(request.time.seconds));
      shard.stats.requests += 1;
      shard.stats.request_bytes += photo.size_bytes;
      if (pressure == OverloadState::shedding) {
        shard.stats.rejected += 1;
        shard.stats.rejected_bytes += photo.size_bytes;
        shard.recorder.record(false);
        action[b] = Action::shed;
        continue;
      }
      if (pressure == OverloadState::degraded) {
        action[b] = Action::degraded;
        continue;
      }
    } else {
      shard.core->prefetch(request, photo);
      shard.stats.requests += 1;
      shard.stats.request_bytes += photo.size_bytes;
    }
    action[b] = Action::normal;
    slot[b] = static_cast<std::uint8_t>(staged);
    ++staged;
    shard.sampler->offer(envelope.index, request,
                         shard.core->stage(request, photo));
  }
  if (staged > 0) {
    // One branch-free batched tree walk for every staged row. The
    // admission-batch histogram records staged rows per gather here
    // (the replay's overload loop records batches of one) — histograms
    // are obs-only and outside RunResult equality.
    shard.core->classify_staged(shard.tree);
    shard.batch_sizes->add(static_cast<double>(staged));
  }

  // Pass 2 — the strictly sequential cache replay in arrival order,
  // consuming the precomputed verdicts on Normal misses.
  for (std::size_t b = 0; b < count; ++b) {
    Envelope& envelope = batch[b];
    switch (action[b]) {
      case Action::put:
        serve_put(shard, envelope);
        break;
      case Action::shed:
        shed_replies.fetch_add(1, std::memory_order_relaxed);
        send_result(envelope, ResultStatus::shed, false);
        break;
      case Action::degraded: {
        // The paper's Original policy as pressure relief: no extraction,
        // no sampling, no classification; admit every miss cheap.
        const Request& request = trace->requests[envelope.index];
        const PhotoMeta& photo = *photos[b];
        shard.policy->set_next_access_hint(oracle->next[envelope.index]);
        const bool hit =
            shard.policy->access(request.photo, photo.size_bytes);
        shard.recorder.record(hit);
        if (hit) {
          shard.stats.hits += 1;
          shard.stats.hit_bytes += photo.size_bytes;
          send_result(envelope, ResultStatus::hit, true);
          break;
        }
        ++shard.core->degradation.degraded_admits;
        const bool stored = insert_with_ssd_retry(shard, request, photo);
        send_result(envelope,
                    stored ? ResultStatus::miss_admitted
                           : ResultStatus::miss_rejected,
                    true);
        break;
      }
      case Action::normal: {
        const Request& request = trace->requests[envelope.index];
        const PhotoMeta& photo = *photos[b];
        shard.policy->set_next_access_hint(oracle->next[envelope.index]);
        const bool hit =
            shard.policy->access(request.photo, photo.size_bytes);
        shard.recorder.record(hit);
        if (hit) {
          shard.stats.hits += 1;
          shard.stats.hit_bytes += photo.size_bytes;
          send_result(envelope, ResultStatus::hit, false);
          break;
        }
        if (shard.core->admit_staged(slot[b], envelope.index, request,
                                     photo)) {
          bool stored = true;
          if (shard.fluid != nullptr) {
            stored = insert_with_ssd_retry(shard, request, photo);
          } else if (shard.policy->insert(request.photo, photo.size_bytes)) {
            shard.stats.insertions += 1;
            shard.stats.inserted_bytes += photo.size_bytes;
          }
          send_result(envelope,
                      stored ? ResultStatus::miss_admitted
                             : ResultStatus::miss_rejected,
                      false);
        } else {
          shard.stats.rejected += 1;
          shard.stats.rejected_bytes += photo.size_bytes;
          send_result(envelope, ResultStatus::miss_rejected, false);
        }
        break;
      }
    }
  }
  if (shard.fluid != nullptr) {
    // Gather-end snapshot of the queue's own counters (assignment —
    // cumulative, idempotent), as the replay does at epoch ends.
    shard.core->degradation.shed_requests = shard.fluid->shed();
    shard.core->degradation.overload_transitions =
        shard.fluid->transitions();
  }
}

void Daemon::Impl::serve_simple(Shard& shard, Envelope& envelope) {
  // Non-proposal modes, a mirror of the replay's scalar loop.
  const Request& request = trace->requests[envelope.index];
  const PhotoMeta& photo = trace->catalog.photo(request.photo);
  shard.policy->set_next_access_hint(oracle->next[envelope.index]);
  const bool hit = shard.policy->access(request.photo, photo.size_bytes);
  shard.stats.requests += 1;
  shard.stats.request_bytes += photo.size_bytes;
  shard.recorder.record(hit);
  if (hit) {
    shard.stats.hits += 1;
    shard.stats.hit_bytes += photo.size_bytes;
    send_result(envelope, ResultStatus::hit, false);
    return;
  }
  bool admitted = false;
  switch (config.run.mode) {
    case AdmissionMode::original:
      admitted = true;
      break;
    case AdmissionMode::bypass:
      admitted = false;
      break;
    case AdmissionMode::ideal: {
      const std::uint64_t distance =
          oracle->reaccess_distance(envelope.index);
      admitted = distance != kNoNextAccess &&
                 static_cast<double>(distance) <= result.criteria.m;
      break;
    }
    case AdmissionMode::proposal:
      break;  // unreachable: proposal takes the batched path
  }
  if (admitted) {
    if (shard.policy->insert(request.photo, photo.size_bytes)) {
      shard.stats.insertions += 1;
      shard.stats.inserted_bytes += photo.size_bytes;
    }
    send_result(envelope, ResultStatus::miss_admitted, false);
  } else {
    shard.stats.rejected += 1;
    shard.stats.rejected_bytes += photo.size_bytes;
    send_result(envelope, ResultStatus::miss_rejected, false);
  }
}

void Daemon::Impl::serve_put(Shard& shard, Envelope& envelope) {
  // Warm-path upsert: a resident photo is touched (policies require
  // insert() of a non-resident key only), a missing one is inserted.
  // Replacement state moves (and evictions it causes fold into the
  // eviction fingerprint via the callback), but request accounting stays
  // GET-only — PUT traffic shows up in wire counters, not CacheStats, so
  // GET-only runs keep replay equivalence.
  const PhotoMeta& photo = trace->catalog.photo(envelope.request.photo);
  if (!shard.policy->access(envelope.request.photo, photo.size_bytes)) {
    (void)shard.policy->insert(envelope.request.photo, photo.size_bytes);
  }
  send_result(envelope, ResultStatus::put_ok, false);
}

bool Daemon::Impl::insert_with_ssd_retry(Shard& shard,
                                         const Request& request,
                                         const PhotoMeta& photo) {
  // Transient SSD write faults retry in place; once the budget is spent
  // the object is simply not cached — an admission rejection, never an
  // error on the serving path (mirrors the replay's overload loop).
  const int budget = config.run.resilience.ssd_write_max_retries;
  int attempt = 0;
  while (OTAC_FAILPOINT_ACTIVE("storage.ssd.write_error")) {
    if (attempt >= budget) {
      ++shard.core->degradation.ssd_write_drops;
      shard.stats.rejected += 1;
      shard.stats.rejected_bytes += photo.size_bytes;
      return false;
    }
    ++attempt;
    ++shard.core->degradation.ssd_write_retries;
  }
  if (shard.policy->insert(request.photo, photo.size_bytes)) {
    shard.stats.insertions += 1;
    shard.stats.inserted_bytes += photo.size_bytes;
  }
  return true;
}

void Daemon::Impl::send_frame(Connection& conn, const std::uint8_t* data,
                              std::size_t size) {
  bool sent = false;
  {
    const std::lock_guard<std::mutex> lock(conn.write_mutex);
    sent = send_all(conn.fd.get(), data, size);
  }
  if (sent) frames_sent.fetch_add(1, std::memory_order_relaxed);
}

void Daemon::Impl::send_result(Envelope& envelope, ResultStatus status,
                               bool degraded) {
  ResultPayload payload;
  payload.status = status;
  payload.degraded = static_cast<std::uint8_t>(degraded ? 1 : 0);
  if (status == ResultStatus::hit) {
    payload.latency_us = hit_latency_us;
  } else if (status == ResultStatus::miss_admitted ||
             status == ResultStatus::miss_rejected) {
    payload.latency_us = miss_latency_us;
  }
  std::array<std::uint8_t, kResultFrameBytes> frame{};
  encode_result_frame(frame.data(), envelope.sequence, payload);
  send_frame(*envelope.conn, frame.data(), frame.size());
}

void Daemon::Impl::send_error(Connection& conn, const std::string& text) {
  // Cold: protocol-violation reply.
  const std::vector<std::uint8_t> frame = encode_frame(
      FrameType::error, 0,
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  send_frame(conn, frame.data(), frame.size());
}

SummaryPayload Daemon::Impl::build_summary_locked() {
  CacheStats merged = shards[0]->stats;
  for (std::size_t s = 1; s < shards.size(); ++s) {
    merged.merge(shards[s]->stats);
  }
  DegradationCounters degradation = trainer_degradation;
  if (is_proposal) {
    for (const auto& shard : shards) {
      degradation.merge(shard->core->degradation);
    }
  }
  SummaryPayload summary;
  summary.requests = merged.requests;
  summary.hits = merged.hits;
  summary.insertions = merged.insertions;
  summary.rejected = merged.rejected;
  summary.evictions = merged.evictions;
  summary.shed_requests = degradation.shed_requests;
  summary.degraded_admits = degradation.degraded_admits;
  summary.overload_transitions = degradation.overload_transitions;
  summary.retrain_timeouts = degradation.retrain_timeouts;
  summary.trainings = static_cast<std::uint64_t>(result.trainings);
  summary.eviction_hash = merged.eviction_hash;
  summary.file_hit_rate = merged.file_hit_rate();
  summary.byte_hit_rate = merged.byte_hit_rate();
  summary.mean_latency_us = mean_latency_for(merged.file_hit_rate());
  return summary;
}

double Daemon::Impl::mean_latency_for(double hit_rate) const {
  return config.run.mode == AdmissionMode::original ||
                 config.run.mode == AdmissionMode::bypass
             ? latency.mean_access_time_original_us(hit_rate)
             : latency.mean_access_time_proposed_us(hit_rate);
}

void Daemon::Impl::populate_registries() {
  for (const auto& shard : shards) {
    populate_cache_metrics(*shard->registry, shard->stats);
    if (is_proposal) {
      populate_history_metrics(*shard->registry, shard->core->history);
      populate_degradation_metrics(*shard->registry,
                                   shard->core->degradation);
    }
  }
}

void Daemon::Impl::populate_wire_metrics() {
  global_registry.set("daemon.connections",
                      connections_total.load(std::memory_order_relaxed));
  global_registry.set("daemon.frames_received",
                      frames_received.load(std::memory_order_relaxed));
  global_registry.set("daemon.frames_sent",
                      frames_sent.load(std::memory_order_relaxed));
  global_registry.set("daemon.get_requests",
                      get_requests.load(std::memory_order_relaxed));
  global_registry.set("daemon.protocol_errors",
                      protocol_errors.load(std::memory_order_relaxed));
  global_registry.set("daemon.put_requests",
                      put_requests.load(std::memory_order_relaxed));
  global_registry.set("daemon.retry_replies",
                      retry_replies.load(std::memory_order_relaxed));
  global_registry.set("daemon.shed_replies",
                      shed_replies.load(std::memory_order_relaxed));
}

obs::MetricsSnapshot Daemon::Impl::merged_snapshot_now() {
  obs::MetricsSnapshot merged = global_registry.snapshot();
  for (const auto& shard : shards) {
    merged.merge(shard->registry->snapshot());
  }
  return merged;
}

void Daemon::Impl::assemble_result_locked() {
  // Mirror of the replay's end-of-run assembly; every step is an
  // assignment over cumulative state, so re-running it (report frame,
  // then stop) is idempotent.
  result.stats = shards[0]->stats;
  for (std::size_t s = 1; s < shards.size(); ++s) {
    result.stats.merge(shards[s]->stats);
  }
  if (is_proposal) {
    result.degradation = trainer_degradation;
    result.history_capacity = 0;
    result.daily.clear();
    std::map<std::int64_t, DayClassifierMetrics> daily;
    for (const auto& shard : shards) {
      result.history_capacity += shard->core->history.capacity();
      result.degradation.merge(shard->core->degradation);
      for (const DayClassifierMetrics& metrics : shard->core->daily) {
        auto [it, inserted] = daily.try_emplace(metrics.day, metrics);
        if (!inserted) {
          it->second.raw.merge(metrics.raw);
          it->second.corrected.merge(metrics.corrected);
        }
      }
    }
    // Cold: report assembly at stats/report/stop time.
    // otac-lint: allow(hotpath-alloc)
    result.daily.reserve(daily.size());
    for (const auto& [day, metrics] : daily) {
      // otac-lint: allow(hotpath-alloc)
      result.daily.push_back(metrics);
    }
  }
  const double hit_rate = result.stats.file_hit_rate();
  result.mean_latency_us = mean_latency_for(hit_rate);
  populate_registries();
  if (is_proposal) {
    populate_degradation_metrics(global_registry, trainer_degradation);
    global_registry.set("trainer.trainings",
                        static_cast<std::uint64_t>(result.trainings));
  }
  populate_wire_metrics();
  result.obs.source = "otacd";
  result.obs.mode = admission_mode_name(config.run.mode);
  result.obs.policy = policy_name(config.run.policy);
  result.obs.shards = shards.size();
  result.obs.threads = shards.size();  // one worker per shard
  result.obs.per_shard.clear();
  // otac-lint: allow(hotpath-alloc)
  result.obs.per_shard.reserve(shards.size());
  for (const auto& shard : shards) {
    // otac-lint: allow(hotpath-alloc)
    result.obs.per_shard.push_back(shard->registry->snapshot());
  }
  result.obs.merged = merged_snapshot_now();
  if (!trace->requests.empty()) {
    const std::uint64_t last = trace->requests.size() - 1;
    if (result.obs.timeline.empty() ||
        result.obs.timeline.back().request_index != last) {
      // otac-lint: allow(hotpath-alloc)
      result.obs.timeline.push_back(obs::BarrierSample{
          last, trace->requests.back().time.seconds, result.obs.merged});
    }
  }
  result.obs.derived =
      derived_run_metrics(result.stats, result.mean_latency_us);
}

void Daemon::Impl::stop() {
  std::call_once(stop_once, [this] {
    {
      // Under the mutex so a concurrent wait_for_shutdown can't check the
      // predicate and park between the store and the notify.
      const std::lock_guard<std::mutex> lock(shutdown_mutex);
      stop_flag.store(true, std::memory_order_relaxed);
    }
    shutdown_cv.notify_all();
    if (!started) {
      finalized.store(true, std::memory_order_release);
      return;
    }
    listener.shutdown_both();
    if (acceptor.joinable()) acceptor.join();
    {
      const std::lock_guard<std::mutex> lock(connections_mutex);
      for (const auto& connection : connections) {
        connection->fd.shutdown_both();
      }
    }
    // Wake any reader blocked on a full queue (its push returns false),
    // then let the workers drain everything already dispatched.
    for (const auto& shard : shards) shard->inbound.stop();
    for (auto& thread : connection_threads) {
      if (thread.joinable()) thread.join();
    }
    for (const auto& shard : shards) {
      if (shard->worker.joinable()) shard->worker.join();
    }
    {
      const std::unique_lock<std::shared_mutex> lock(dispatch_mutex);
      flush_barriers_locked();
      assemble_result_locked();
    }
    finalized.store(true, std::memory_order_release);
  });
}

Daemon::Daemon(const IntelligentCache& system, DaemonConfig config)
    // otac-lint: allow(hotpath-alloc) one-time construction, not per-request
    : impl_(std::make_unique<Impl>(system, std::move(config))) {}

Daemon::~Daemon() { impl_->stop(); }

void Daemon::start() { impl_->start(); }

std::uint16_t Daemon::port() const { return impl_->bound_port; }

void Daemon::wait_for_shutdown() {
  std::unique_lock<std::mutex> lock(impl_->shutdown_mutex);
  impl_->shutdown_cv.wait(lock, [this] {
    return impl_->shutdown_requested ||
           impl_->stop_flag.load(std::memory_order_relaxed);
  });
}

void Daemon::stop() { impl_->stop(); }

const RunResult& Daemon::result() const {
  if (!impl_->finalized.load(std::memory_order_acquire)) {
    throw std::logic_error("Daemon::result() before stop()");
  }
  return impl_->result;
}

DaemonWireStats Daemon::wire_stats() const {
  DaemonWireStats out;
  out.connections =
      impl_->connections_total.load(std::memory_order_relaxed);
  out.frames_received =
      impl_->frames_received.load(std::memory_order_relaxed);
  out.frames_sent = impl_->frames_sent.load(std::memory_order_relaxed);
  out.protocol_errors =
      impl_->protocol_errors.load(std::memory_order_relaxed);
  out.retry_replies = impl_->retry_replies.load(std::memory_order_relaxed);
  out.shed_replies = impl_->shed_replies.load(std::memory_order_relaxed);
  out.get_requests = impl_->get_requests.load(std::memory_order_relaxed);
  out.put_requests = impl_->put_requests.load(std::memory_order_relaxed);
  return out;
}

}  // namespace otac::net
