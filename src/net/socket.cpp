#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace otac::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_in make_address(const std::string& host, std::uint16_t port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    throw std::runtime_error("invalid IPv4 address: " + host);
  }
  return address;
}

}  // namespace

UniqueFd& UniqueFd::operator=(UniqueFd&& other) noexcept {
  if (this != &other) reset(other.release());
  return *this;
}

UniqueFd::~UniqueFd() { reset(); }

void UniqueFd::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

void UniqueFd::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

UniqueFd tcp_listen(const std::string& host, std::uint16_t port) {
  UniqueFd fd{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!fd.valid()) throw_errno("socket");
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const sockaddr_in address = make_address(host, port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    throw_errno("bind " + host);
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) throw_errno("listen");
  return fd;
}

UniqueFd tcp_connect(const std::string& host, std::uint16_t port) {
  UniqueFd fd{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!fd.valid()) throw_errno("socket");
  const sockaddr_in address = make_address(host, port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in address{};
  socklen_t size = sizeof(address);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&address), &size) != 0) {
    throw_errno("getsockname");
  }
  return ntohs(address.sin_port);
}

bool send_all(int fd, const std::uint8_t* data, std::size_t size) noexcept {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::size_t recv_exact(int fd, std::uint8_t* data, std::size_t size) noexcept {
  std::size_t received = 0;
  while (received < size) {
    const ssize_t n = ::recv(fd, data + received, size - received, 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    received += static_cast<std::size_t>(n);
  }
  return received;
}

}  // namespace otac::net
