// Open-loop load generator for the serving daemon (tools/otac_loadgen).
//
// The generator replays the seeded trace's arrival process compressed to
// wall clock: send time of request i is (t_i - t_0) * c, with c chosen so
// the average rate equals `offered_rps`. Because the trace's per-user
// popularity model is heavy-tailed and diurnal, compressing its arrival
// times — rather than emitting a uniform or Poisson stream — preserves
// the burst shape that makes the daemon's overload ladder interesting.
//
// Open loop: the sender never waits for replies (a receiver thread
// matches RESULT frames back to send timestamps by sequence), so client
// latency includes server queueing. The one closed-loop element is TCP
// itself — with the daemon's default blocking dispatch, a full shard
// queue propagates to the sender as socket backpressure, which is exactly
// the behavior BENCH_daemon.json is meant to observe.
#pragma once

#include <cstdint>
#include <string>

#include "net/protocol.h"
#include "trace/trace.h"

namespace otac::net {

struct LoadgenConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// GET frames to send (0 = the whole trace, in trace order).
  std::uint64_t requests = 0;
  /// Open-loop offered rate in requests per wall-clock second.
  double offered_rps = 20000.0;
  /// Every k-th request also sends a PUT of the same photo (0 = none).
  std::uint64_t put_every = 0;
  /// Also fetch the server's RunReport JSON before shutting down.
  bool fetch_report = false;
};

/// Client- and server-side outcome of one load-generation run. The server
/// cell comes back over the wire (STATS -> SummaryPayload), so writing
/// BENCH_daemon.json needs no JSON parsing.
struct LoadgenResult {
  std::uint64_t requests = 0;  ///< GET frames sent
  std::uint64_t puts = 0;      ///< PUT frames sent
  std::uint64_t replies = 0;   ///< RESULT frames received
  std::uint64_t hits = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t retries = 0;
  std::uint64_t degraded = 0;  ///< replies flagged Degraded
  std::uint64_t put_oks = 0;
  std::uint64_t errors = 0;
  std::string error_text;  ///< first transport/protocol error, if any
  double wall_seconds = 0.0;   ///< send phase (first to last GET frame)
  double offered_rps = 0.0;
  double achieved_rps = 0.0;   ///< replies over time-to-last-reply
  double p50_us = 0.0;         ///< client-side reply latency quantiles
  double p99_us = 0.0;
  double p999_us = 0.0;
  SummaryPayload server;           ///< STATS reply
  std::string server_report_json;  ///< REPORT reply (fetch_report only)
};

/// Connect, replay `config.requests` trace requests open-loop, collect
/// the server summary, and shut the daemon down. The trace must be the
/// same seed/scale the daemon was started with — the daemon verifies
/// every GET's photo id against its own trace and drops the connection on
/// mismatch. Throws std::runtime_error on connect failure.
[[nodiscard]] LoadgenResult run_loadgen(const Trace& trace,
                                        const LoadgenConfig& config);

}  // namespace otac::net
