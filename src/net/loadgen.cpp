#include "net/loadgen.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "net/socket.h"

namespace otac::net {

namespace {

/// PUT frames reuse the request index as sequence with the top bit set so
/// they never collide with GET sequences (plain trace indices).
constexpr std::uint64_t kPutSequenceBit = 1ULL << 63;

double quantile_us(const std::vector<std::int64_t>& sorted_ns, double q) {
  if (sorted_ns.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ns.size()));
  const std::size_t clamped = std::min(rank, sorted_ns.size() - 1);
  return static_cast<double>(sorted_ns[clamped]) / 1000.0;
}

}  // namespace

LoadgenResult run_loadgen(const Trace& trace, const LoadgenConfig& config) {
  const std::uint64_t total = trace.requests.size();
  const std::uint64_t n =
      config.requests == 0 ? total : std::min(config.requests, total);
  if (n == 0) {
    throw std::invalid_argument("loadgen: no requests to send");
  }

  UniqueFd fd = tcp_connect(config.host, config.port);

  LoadgenResult result;
  result.offered_rps = config.offered_rps;

  // Send timestamps, written by the sender with release and read by the
  // receiver with acquire: the socket round-trip provides no C++-level
  // happens-before edge, so the pairing must synchronize on the slot
  // itself (this is what keeps the loadgen TSan-clean).
  std::vector<std::atomic<std::int64_t>> send_ns(n);
  std::vector<std::int64_t> latencies_ns;
  latencies_ns.reserve(n);
  std::atomic<std::int64_t> last_reply_ns{0};

  const auto epoch = std::chrono::steady_clock::now();
  const auto now_ns = [&epoch] {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch)
        .count();
  };

  std::thread receiver([&] {
    std::array<std::uint8_t, kHeaderBytes> head{};
    std::vector<std::uint8_t> payload;
    std::uint64_t frames = 0;
    bool running = true;
    while (running) {
      const std::size_t got = recv_exact(fd.get(), head.data(), head.size());
      if (got == 0) break;  // server closed
      try {
        const FrameHeader header = decode_header(
            std::span<const std::uint8_t>(head.data(), got), frames + 1);
        payload.resize(header.payload_size);  // bound-checked by the codec
        std::size_t body_got = 0;
        if (header.payload_size > 0) {
          body_got =
              recv_exact(fd.get(), payload.data(), header.payload_size);
        }
        verify_payload(
            header, std::span<const std::uint8_t>(payload.data(), body_got),
            frames + 1);
        ++frames;
        switch (header.type) {
          case FrameType::result: {
            const ResultPayload reply = decode_result(
                std::span<const std::uint8_t>(payload.data(),
                                              payload.size()),
                frames);
            const std::int64_t t = now_ns();
            last_reply_ns.store(t, std::memory_order_relaxed);
            ++result.replies;
            if (reply.degraded != 0) ++result.degraded;
            switch (reply.status) {
              case ResultStatus::hit: ++result.hits; break;
              case ResultStatus::miss_admitted: ++result.admitted; break;
              case ResultStatus::miss_rejected: ++result.rejected; break;
              case ResultStatus::shed: ++result.shed; break;
              case ResultStatus::retry: ++result.retries; break;
              case ResultStatus::put_ok: ++result.put_oks; break;
            }
            if (reply.status != ResultStatus::put_ok &&
                header.sequence < n) {
              const std::int64_t sent =
                  send_ns[header.sequence].load(std::memory_order_acquire);
              if (sent != 0) latencies_ns.push_back(t - sent);
            }
            break;
          }
          case FrameType::summary:
            result.server = decode_summary(
                std::span<const std::uint8_t>(payload.data(),
                                              payload.size()),
                frames);
            break;
          case FrameType::report:
            result.server_report_json.assign(payload.begin(), payload.end());
            break;
          case FrameType::shutdown_ack:
            running = false;
            break;
          case FrameType::error:
            ++result.errors;
            if (result.error_text.empty()) {
              result.error_text.assign(payload.begin(), payload.end());
            }
            running = false;
            break;
          default:
            ++result.errors;
            if (result.error_text.empty()) {
              result.error_text = "unexpected frame from server";
            }
            running = false;
            break;
        }
      } catch (const std::exception& error) {
        ++result.errors;
        if (result.error_text.empty()) result.error_text = error.what();
        running = false;
      }
    }
  });

  // Sender (this thread): the trace's arrival process compressed so the
  // mean rate is offered_rps — burst shape preserved, pace independent of
  // replies (open loop).
  const std::int64_t t0 = trace.requests[0].time.seconds;
  const double sim_span = static_cast<double>(
      trace.requests[n - 1].time.seconds - t0);
  const double target_span = config.offered_rps > 0.0
                                 ? static_cast<double>(n) / config.offered_rps
                                 : 0.0;
  const double compression =
      sim_span > 0.0 && target_span > 0.0 ? target_span / sim_span : 0.0;

  const auto start = std::chrono::steady_clock::now();
  std::array<std::uint8_t, kGetFrameBytes> get_frame{};
  std::array<std::uint8_t, kPutFrameBytes> put_frame{};
  bool send_failed = false;
  for (std::uint64_t i = 0; i < n && !send_failed; ++i) {
    const Request& request = trace.requests[i];
    if (compression > 0.0) {
      const double offset_s =
          static_cast<double>(request.time.seconds - t0) * compression;
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(offset_s)));
    }
    if (config.put_every != 0 && i % config.put_every == 0) {
      PutPayload put;
      put.time_seconds = request.time.seconds;
      put.photo = request.photo;
      encode_put_frame(put_frame.data(), kPutSequenceBit | i, put);
      if (!send_all(fd.get(), put_frame.data(), put_frame.size())) {
        send_failed = true;
        break;
      }
      ++result.puts;
    }
    GetPayload get;
    get.index = i;
    get.time_seconds = request.time.seconds;
    get.photo = request.photo;
    get.terminal = static_cast<std::uint8_t>(request.terminal);
    send_ns[i].store(now_ns(), std::memory_order_release);
    encode_get_frame(get_frame.data(), i, get);
    if (!send_all(fd.get(), get_frame.data(), get_frame.size())) {
      send_failed = true;
      break;
    }
    ++result.requests;
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // End-of-stream control frames; the server's connection reader handles
  // frames in order, so STATS summarizes after every GET above is served.
  if (!send_failed) {
    std::array<std::uint8_t, kHeaderBytes> control{};
    encode_header(control.data(), FrameType::stats_request, n, {});
    send_failed = !send_all(fd.get(), control.data(), control.size());
    if (!send_failed && config.fetch_report) {
      encode_header(control.data(), FrameType::report_request, n + 1, {});
      send_failed = !send_all(fd.get(), control.data(), control.size());
    }
    if (!send_failed) {
      encode_header(control.data(), FrameType::shutdown_request, n + 2, {});
      send_failed = !send_all(fd.get(), control.data(), control.size());
    }
  }
  if (send_failed) {
    // Unblock the receiver (it may be mid-recv on a dead server).
    fd.shutdown_both();
  }
  receiver.join();
  if (send_failed && result.error_text.empty()) {
    ++result.errors;
    result.error_text = "send failed (server closed the connection)";
  }

  std::sort(latencies_ns.begin(), latencies_ns.end());
  result.p50_us = quantile_us(latencies_ns, 0.50);
  result.p99_us = quantile_us(latencies_ns, 0.99);
  result.p999_us = quantile_us(latencies_ns, 0.999);
  const double last_s =
      static_cast<double>(last_reply_ns.load(std::memory_order_relaxed)) /
      1e9;
  result.achieved_rps =
      last_s > 0.0 ? static_cast<double>(result.replies) / last_s : 0.0;
  return result;
}

}  // namespace otac::net
