// Wire protocol of the serving daemon (tools/otacd): length-prefixed
// binary frames over TCP/loopback, little-endian throughout.
//
// Frame layout (kHeaderBytes = 24, then the payload):
//
//   offset  size  field
//        0     4  magic        0x4F 0x54 0x41 0x43 ("OTAC" on the wire)
//        4     2  version      kProtocolVersion
//        6     2  type         FrameType
//        8     8  sequence     client-assigned correlation id (the trace
//                              request index for GET frames)
//       16     4  payload_size bytes that follow; <= kMaxPayloadBytes
//       20     4  payload_crc  CRC-32 (IEEE) over the payload bytes
//
// Every decode error names the offending frame by its 1-based position in
// the stream with an exact, testable message (tests/net/protocol_test.cpp
// sweeps truncation at every boundary). The oversized-payload check runs
// on the header alone, before any payload buffer is allocated or read.
//
// Request/response pairing: GET and PUT are answered with a RESULT frame
// echoing the request's sequence; replies may arrive out of request order
// (shard workers run concurrently), so clients match on sequence, never
// on arrival order. STATS yields a fixed binary SummaryPayload, REPORT a
// variable-length RunReport JSON document, SHUTDOWN an empty ack.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace otac::net {

inline constexpr std::uint32_t kMagic = 0x4341544FU;  // "OTAC" little-endian
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 24;
/// Hard bound on payload size, enforced before allocation. Generous
/// enough for the largest legitimate frame (a RunReport JSON document).
inline constexpr std::uint32_t kMaxPayloadBytes = 8U << 20;

enum class FrameType : std::uint16_t {
  get_request = 1,        ///< serve one trace request        -> result
  put_request = 2,        ///< direct cache insert (warm)     -> result
  result = 3,             ///< RESULT reply for GET/PUT
  stats_request = 4,      ///< binary end-of-stream summary   -> summary
  summary = 5,            ///< SummaryPayload reply
  report_request = 6,     ///< RunReport JSON                 -> report
  report = 7,             ///< JSON text reply
  shutdown_request = 8,   ///< graceful stop                  -> shutdown_ack
  shutdown_ack = 9,       ///< empty ack; daemon stops serving
  error = 10,             ///< UTF-8 error text (protocol violations)
};

/// Stable lowercase label for error messages ("get", "put", "result", ...).
[[nodiscard]] const char* frame_type_name(FrameType type) noexcept;

struct FrameHeader {
  FrameType type = FrameType::error;
  std::uint64_t sequence = 0;
  std::uint32_t payload_size = 0;
  std::uint32_t payload_crc = 0;
};

/// Serving verdict carried by a RESULT frame.
enum class ResultStatus : std::uint8_t {
  hit = 0,
  miss_admitted = 1,   ///< miss, object written to the cache
  miss_rejected = 2,   ///< miss, admission declined the write
  shed = 3,            ///< dropped by the overload ladder before serving
  retry = 4,           ///< inbound queue full (retry dispatch mode only)
  put_ok = 5,          ///< PUT insert completed
};

// --- typed payloads ------------------------------------------------------

/// GET: one trace request, addressed by its global index so the daemon can
/// consult the next-access oracle and the retrain schedule.
struct GetPayload {
  std::uint64_t index = 0;       ///< trace request index
  std::int64_t time_seconds = 0; ///< simulated arrival time
  std::uint32_t photo = 0;
  std::uint8_t terminal = 0;     ///< TerminalType as a byte
};
inline constexpr std::uint32_t kGetPayloadBytes = 24;

/// PUT: insert `photo` (size from the shared catalog) without admission.
struct PutPayload {
  std::int64_t time_seconds = 0;
  std::uint32_t photo = 0;
};
inline constexpr std::uint32_t kPutPayloadBytes = 16;

struct ResultPayload {
  ResultStatus status = ResultStatus::hit;
  std::uint8_t degraded = 0;   ///< served under the Degraded overload state
  double latency_us = 0.0;     ///< Eq. 3 modeled latency of this request
};
inline constexpr std::uint32_t kResultPayloadBytes = 16;

/// Fixed binary end-of-stream summary (the server cell of
/// BENCH_daemon.json, without the client having to parse JSON).
struct SummaryPayload {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t insertions = 0;
  std::uint64_t rejected = 0;
  std::uint64_t evictions = 0;
  std::uint64_t shed_requests = 0;
  std::uint64_t degraded_admits = 0;
  std::uint64_t overload_transitions = 0;
  std::uint64_t retrain_timeouts = 0;
  std::uint64_t trainings = 0;
  std::uint64_t eviction_hash = 0;
  double file_hit_rate = 0.0;
  double byte_hit_rate = 0.0;
  double mean_latency_us = 0.0;
};
inline constexpr std::uint32_t kSummaryPayloadBytes = 112;

// --- little-endian primitives -------------------------------------------

void put_u16(std::uint8_t* out, std::uint16_t v) noexcept;
void put_u32(std::uint8_t* out, std::uint32_t v) noexcept;
void put_u64(std::uint8_t* out, std::uint64_t v) noexcept;
void put_f64(std::uint8_t* out, double v) noexcept;
[[nodiscard]] std::uint16_t read_u16(const std::uint8_t* in) noexcept;
[[nodiscard]] std::uint32_t read_u32(const std::uint8_t* in) noexcept;
[[nodiscard]] std::uint64_t read_u64(const std::uint8_t* in) noexcept;
[[nodiscard]] double read_f64(const std::uint8_t* in) noexcept;

// --- encode --------------------------------------------------------------

/// Write the 24-byte header for a frame whose payload is already known.
/// `out` must hold kHeaderBytes.
void encode_header(std::uint8_t* out, FrameType type, std::uint64_t sequence,
                   std::span<const std::uint8_t> payload) noexcept;

/// Whole frame (header + payload) as a fresh buffer. Convenience for the
/// cold control frames; the serving path uses the fixed-size encoders.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    FrameType type, std::uint64_t sequence,
    std::span<const std::uint8_t> payload);

inline constexpr std::size_t kGetFrameBytes = kHeaderBytes + kGetPayloadBytes;
inline constexpr std::size_t kPutFrameBytes = kHeaderBytes + kPutPayloadBytes;
inline constexpr std::size_t kResultFrameBytes =
    kHeaderBytes + kResultPayloadBytes;
inline constexpr std::size_t kSummaryFrameBytes =
    kHeaderBytes + kSummaryPayloadBytes;

/// Fixed-size whole-frame encoders into caller storage — the request and
/// reply hot paths allocate nothing.
void encode_get_frame(std::uint8_t* out, std::uint64_t sequence,
                      const GetPayload& payload) noexcept;
void encode_put_frame(std::uint8_t* out, std::uint64_t sequence,
                      const PutPayload& payload) noexcept;
void encode_result_frame(std::uint8_t* out, std::uint64_t sequence,
                         const ResultPayload& payload) noexcept;
void encode_summary_frame(std::uint8_t* out, std::uint64_t sequence,
                          const SummaryPayload& payload) noexcept;

// --- decode --------------------------------------------------------------
//
// All decoders throw std::runtime_error with a message prefixed
// "frame N: " where N is the 1-based position of the offending frame in
// its stream (callers thread the count through).

/// Validate and parse a 24-byte header. Checks, in order: length, magic,
/// version, frame type, payload bound — so an oversized payload_size is
/// rejected here, before any payload buffer exists.
[[nodiscard]] FrameHeader decode_header(std::span<const std::uint8_t> bytes,
                                        std::uint64_t frame_number);

/// Check the payload against the header's size and CRC declarations.
void verify_payload(const FrameHeader& header,
                    std::span<const std::uint8_t> payload,
                    std::uint64_t frame_number);

/// Server-side pre-read validation: every client->server frame carries a
/// fixed payload size (get 24, put 16, the control requests 0), so the
/// daemon rejects a header declaring anything else *before* reading the
/// payload — the reader's receive buffer is a small fixed stack array.
/// Throws the typed decoders' "<type> payload is N bytes (expected M)"
/// message, or "unexpected <type> frame from client" for reply types.
void check_client_frame(const FrameHeader& header, std::uint64_t frame_number);

[[nodiscard]] GetPayload decode_get(std::span<const std::uint8_t> payload,
                                    std::uint64_t frame_number);
[[nodiscard]] PutPayload decode_put(std::span<const std::uint8_t> payload,
                                    std::uint64_t frame_number);
[[nodiscard]] ResultPayload decode_result(
    std::span<const std::uint8_t> payload, std::uint64_t frame_number);
[[nodiscard]] SummaryPayload decode_summary(
    std::span<const std::uint8_t> payload, std::uint64_t frame_number);

/// One fully decoded frame (CRC already verified).
struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// Incremental decoder over an in-memory byte stream: next() yields frames
/// in order, returns nullopt exactly at a clean frame boundary, and throws
/// the same frame-numbered errors the daemon's socket reader produces —
/// which is what lets the malformed-frame sweep run without sockets.
class FrameParser {
 public:
  explicit FrameParser(std::span<const std::uint8_t> buffer) noexcept
      : buffer_(buffer) {}

  [[nodiscard]] std::optional<Frame> next();
  [[nodiscard]] std::uint64_t frames_decoded() const noexcept {
    return frames_;
  }

 private:
  std::span<const std::uint8_t> buffer_;
  std::size_t offset_ = 0;
  std::uint64_t frames_ = 0;
};

}  // namespace otac::net
