// otacd — the network serving daemon: the sharded serving stack
// (core/sharded_cache.h) behind the length-prefixed wire protocol
// (net/protocol.h) on a TCP loopback socket.
//
// The daemon is a *networked replay*: server and client independently
// generate the same seeded trace, so GET frames address requests by trace
// index and the server retains everything the in-process replay has — the
// photo catalog, the next-access oracle for training labels, the criteria
// M, and the precomputed retrain-trigger schedule. That is what lets a
// loopback run reproduce the replay's RunResult bit-for-bit (the e2e
// determinism test pins it), while the transport underneath is real
// sockets, real threads, and real backpressure.
//
// Threading model (DESIGN.md §15):
//   acceptor thread        poll+accept loop, bounded by the stop flag
//   connection threads     one per client: read frames in order, decode,
//                          run retrain barriers at trigger crossings, and
//                          dispatch into the owning shard's bounded queue
//   shard workers          one per shard; each gathers <=64 queued
//                          requests and runs them through the staged-batch
//                          admission path (ServingCore), gated per request
//                          by the fluid ShardQueue overload ladder
//
// Backpressure maps to the protocol at two layers: the *fluid* ShardQueue
// (deterministic, sim-time driven) turns Shedding into SHED replies and
// Degraded into cheap Original-path admission flagged in the RESULT
// frame; the *physical* inbound queue either blocks the connection reader
// when full (default — TCP backpressure, keeps single-connection runs
// deterministic) or, with retry_when_full, answers RETRY immediately.
//
// Determinism contract: with one client connection sending GET frames in
// trace-index order, the default blocking dispatch, and an inline
// watchdog, the server-side RunResult equals ShardedCache::run on the
// same RunConfig — including the eviction hash. Multiple connections or
// retry_when_full keep all safety properties (TSan-clean, bounded queues)
// but order shed/degraded transitions by arrival, not by trace.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/intelligent_cache.h"

namespace otac::net {

struct DaemonConfig {
  /// Serving configuration: mode, policy, capacity, shards, resilience.
  /// `run.threads` is ignored — the daemon runs one worker per shard.
  RunConfig run;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = kernel-assigned (read back via port())
  /// Physical inbound frames buffered per shard before backpressure.
  std::size_t queue_capacity = 1024;
  /// Queue-full policy: false blocks the connection reader (deterministic
  /// TCP backpressure), true replies RETRY without serving.
  bool retry_when_full = false;
  /// Requests gathered per staged admission batch (clamped to
  /// ServingCore::kAdmissionBatchCapacity).
  std::size_t gather_max = 64;
};

/// Transport-layer counters (exported as daemon.* metrics in the report;
/// deliberately outside RunResult so result equality stays a statement
/// about serving behavior).
struct DaemonWireStats {
  std::uint64_t connections = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t retry_replies = 0;
  std::uint64_t shed_replies = 0;
  std::uint64_t get_requests = 0;
  std::uint64_t put_requests = 0;
};

class Daemon {
 public:
  /// The system (trace + oracle) must outlive the daemon.
  Daemon(const IntelligentCache& system, DaemonConfig config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Bind, listen, and spawn the acceptor and shard workers. Throws on
  /// bind/listen failure or an invalid RunConfig.
  void start();

  /// Port actually bound (valid after start()).
  [[nodiscard]] std::uint16_t port() const;

  /// Block until a client sends a SHUTDOWN frame (or stop() is called).
  void wait_for_shutdown();

  /// Graceful stop: close the listener, drain every shard queue, join all
  /// threads, fire any remaining retrain barriers, and assemble the final
  /// RunResult. Idempotent.
  void stop();

  /// Server-side result of everything served so far. Valid after stop().
  [[nodiscard]] const RunResult& result() const;

  [[nodiscard]] DaemonWireStats wire_stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace otac::net
