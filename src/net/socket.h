// Minimal POSIX TCP helpers shared by the daemon (net/daemon.h) and the
// load generator (net/loadgen.h): an RAII fd, listen/connect on loopback,
// and exact-length send/receive. No framing here — that is protocol.h's
// job — and no portability layer: the serving tier targets Linux.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace otac::net {

/// Move-only owning file descriptor; closes on destruction.
class UniqueFd {
 public:
  UniqueFd() noexcept = default;
  explicit UniqueFd(int fd) noexcept : fd_(fd) {}
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept;
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  ~UniqueFd();

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1) noexcept;
  /// shutdown(2) both directions — unblocks a thread parked in recv().
  void shutdown_both() noexcept;

 private:
  int fd_ = -1;
};

/// Bind + listen on `host:port` (port 0 = kernel-assigned). Throws
/// std::runtime_error with the errno text on failure.
[[nodiscard]] UniqueFd tcp_listen(const std::string& host,
                                  std::uint16_t port);

/// Connect to `host:port`. Throws std::runtime_error on failure.
[[nodiscard]] UniqueFd tcp_connect(const std::string& host,
                                   std::uint16_t port);

/// Port actually bound (resolves a port-0 listen).
[[nodiscard]] std::uint16_t local_port(int fd);

/// Write exactly `size` bytes; false on any error (peer gone).
[[nodiscard]] bool send_all(int fd, const std::uint8_t* data,
                            std::size_t size) noexcept;

/// Read exactly `size` bytes. Returns `size` on success, 0 on clean EOF
/// before the first byte, and the short count when the stream ends
/// mid-buffer (the caller turns that into a truncation error).
[[nodiscard]] std::size_t recv_exact(int fd, std::uint8_t* data,
                                     std::size_t size) noexcept;

}  // namespace otac::net
