// Table 1 (seven-classifier comparison), the §3.1.2 tree-configuration
// facts, the §3.2.2 feature-selection study, and Fig. 5 (per-day classifier
// quality under daily retraining).
#pragma once

#include <string>
#include <vector>

#include "core/intelligent_cache.h"
#include "ml/cross_validation.h"
#include "ml/feature_selection.h"
#include "trace/trace.h"

namespace otac {

/// Sampled + labeled classification dataset (§3.1.1): `records_per_minute`
/// requests per minute, features from the online extractor, labels from the
/// one-time-access criteria with threshold `m` (full-trace knowledge — this
/// is the offline study setting of Table 1, not the deployed trainer).
[[nodiscard]] ml::Dataset build_classifier_dataset(const Trace& trace,
                                                   const NextAccessInfo& oracle,
                                                   double m,
                                                   int records_per_minute);

struct Table1Row {
  std::string algorithm;
  ml::CvMetrics metrics;
};

struct Table1Config {
  std::size_t folds = 3;
  std::uint64_t seed = 42;
  /// Rows above this are uniformly subsampled first (kNN/MLP cost control).
  std::size_t max_rows = 60'000;
};

/// Cross-validate the paper's seven algorithms on the dataset.
[[nodiscard]] std::vector<Table1Row> run_table1(const ml::Dataset& data,
                                                const Table1Config& config);

struct TreeConfigFacts {
  std::size_t splits = 0;
  std::size_t height = 0;
  double mean_comparisons = 0.0;  // average decision-path length
};

/// Fit the deployment tree on the dataset and report §3.1.2's facts.
[[nodiscard]] TreeConfigFacts tree_config_facts(const ml::Dataset& data,
                                                std::size_t max_splits);

/// Per-day classifier quality for Fig. 5: proposal run at the reference
/// capacity with the given policy's criteria.
[[nodiscard]] std::vector<DayClassifierMetrics> run_daily_classification(
    const Trace& trace, PolicyKind policy, std::uint64_t capacity_bytes);

}  // namespace otac
