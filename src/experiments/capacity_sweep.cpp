#include "experiments/capacity_sweep.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>

#include "util/thread_pool.h"

#include "util/env_config.h"

namespace otac {

namespace {

int policy_id(PolicyKind kind) { return static_cast<int>(kind); }
int mode_id(AdmissionMode mode) { return static_cast<int>(mode); }

std::uint64_t config_fingerprint(const SweepConfig& config,
                                 const BenchWorkloadInfo& info) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t value) {
    h ^= value;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<std::uint64_t>(config.version));
  for (const double gb : config.paper_gb) {
    mix(static_cast<std::uint64_t>(gb * 1000.0));
  }
  for (const PolicyKind p : config.policies) {
    mix(static_cast<std::uint64_t>(policy_id(p)) + 101);
  }
  for (const AdmissionMode m : config.modes) {
    mix(static_cast<std::uint64_t>(mode_id(m)) + 577);
  }
  mix(config.include_belady ? 7 : 13);
  mix(static_cast<std::uint64_t>(config.lirs_lir_fraction * 1e6));
  mix(info.seed);
  mix(static_cast<std::uint64_t>(info.scale * 1e6));
  mix(info.requests);
  mix(info.photos);
  return h;
}

SweepCell make_cell(PolicyKind policy, AdmissionMode mode, double paper_gb,
                    std::uint64_t capacity, const RunResult& run) {
  SweepCell cell;
  cell.policy = policy;
  cell.mode = mode;
  cell.paper_gb = paper_gb;
  cell.capacity_bytes = capacity;
  cell.file_hit_rate = run.stats.file_hit_rate();
  cell.byte_hit_rate = run.stats.byte_hit_rate();
  cell.file_write_rate = run.stats.file_write_rate();
  cell.byte_write_rate = run.stats.byte_write_rate();
  cell.latency_us = run.mean_latency_us;
  cell.criteria_m = run.criteria.m;
  cell.insertions = run.stats.insertions;
  cell.inserted_bytes = run.stats.inserted_bytes;
  cell.rejected = run.stats.rejected;
  return cell;
}

}  // namespace

std::optional<SweepCell> SweepResult::find(PolicyKind policy,
                                           AdmissionMode mode,
                                           double paper_gb) const {
  for (const SweepCell& cell : cells) {
    if (cell.policy == policy && cell.mode == mode &&
        cell.paper_gb == paper_gb) {
      return cell;
    }
  }
  return std::nullopt;
}

SweepResult run_capacity_sweep(const Trace& trace, const SweepConfig& config,
                               const BenchWorkloadInfo& info) {
  SweepResult result;
  result.workload = info;
  const IntelligentCache system{trace};

  // One work item per capacity; capacities are independent, so they fan out
  // across the thread pool (the per-capacity cells are assembled into
  // index-addressed slots, keeping the output deterministic regardless of
  // scheduling).
  std::vector<std::vector<SweepCell>> per_capacity(config.paper_gb.size());
  ThreadPool pool;
  pool.parallel_for(config.paper_gb.size(), [&](std::size_t slot) {
    const double gb = config.paper_gb[slot];
    const std::uint64_t capacity =
        map_paper_gb(gb, system.total_object_bytes());
    if (capacity == 0) return;
    std::vector<SweepCell>& cells = per_capacity[slot];

    // LRU/original doubles as the hit-rate estimate for the criteria.
    RunConfig lru_config;
    lru_config.policy = PolicyKind::lru;
    lru_config.capacity_bytes = capacity;
    lru_config.mode = AdmissionMode::original;
    lru_config.lirs_lir_fraction = config.lirs_lir_fraction;
    const RunResult lru_original = system.run(lru_config);
    const double h_estimate = lru_original.stats.file_hit_rate();

    for (const PolicyKind policy : config.policies) {
      for (const AdmissionMode mode : config.modes) {
        if (policy == PolicyKind::lru && mode == AdmissionMode::original) {
          cells.push_back(make_cell(policy, mode, gb, capacity, lru_original));
          continue;
        }
        RunConfig run_config;
        run_config.policy = policy;
        run_config.capacity_bytes = capacity;
        run_config.mode = mode;
        run_config.lirs_lir_fraction = config.lirs_lir_fraction;
        run_config.hit_rate_estimate = h_estimate;
        cells.push_back(
            make_cell(policy, mode, gb, capacity, system.run(run_config)));
      }
    }
    if (config.include_belady) {
      RunConfig belady_config;
      belady_config.policy = PolicyKind::belady;
      belady_config.capacity_bytes = capacity;
      belady_config.mode = AdmissionMode::original;
      cells.push_back(make_cell(PolicyKind::belady, AdmissionMode::original,
                                gb, capacity, system.run(belady_config)));
    }
  });
  for (const auto& cells : per_capacity) {
    result.cells.insert(result.cells.end(), cells.begin(), cells.end());
  }
  return result;
}

std::string sweep_to_csv(const SweepResult& result) {
  std::ostringstream out;
  out << "policy,mode,paper_gb,capacity_bytes,file_hit_rate,byte_hit_rate,"
         "file_write_rate,byte_write_rate,latency_us,criteria_m,insertions,"
         "inserted_bytes,rejected\n";
  out.precision(12);
  for (const SweepCell& cell : result.cells) {
    out << policy_id(cell.policy) << ',' << mode_id(cell.mode) << ','
        << cell.paper_gb << ',' << cell.capacity_bytes << ','
        << cell.file_hit_rate << ',' << cell.byte_hit_rate << ','
        << cell.file_write_rate << ',' << cell.byte_write_rate << ','
        << cell.latency_us << ',' << cell.criteria_m << ',' << cell.insertions
        << ',' << cell.inserted_bytes << ',' << cell.rejected << '\n';
  }
  return out.str();
}

std::optional<SweepResult> sweep_from_csv(const std::string& csv) {
  std::istringstream in{csv};
  std::string line;
  if (!std::getline(in, line) || line.rfind("policy,mode", 0) != 0) {
    return std::nullopt;
  }
  SweepResult result;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    SweepCell cell;
    int policy = 0;
    int mode = 0;
    unsigned long long capacity = 0;
    unsigned long long insertions = 0;
    unsigned long long rejected = 0;
    const int fields = std::sscanf(
        line.c_str(), "%d,%d,%lf,%llu,%lf,%lf,%lf,%lf,%lf,%lf,%llu,%lf,%llu",
        &policy, &mode, &cell.paper_gb, &capacity, &cell.file_hit_rate,
        &cell.byte_hit_rate, &cell.file_write_rate, &cell.byte_write_rate,
        &cell.latency_us, &cell.criteria_m, &insertions, &cell.inserted_bytes,
        &rejected);
    if (fields != 13) return std::nullopt;
    cell.policy = static_cast<PolicyKind>(policy);
    cell.mode = static_cast<AdmissionMode>(mode);
    cell.capacity_bytes = capacity;
    cell.insertions = insertions;
    cell.rejected = rejected;
    result.cells.push_back(cell);
  }
  if (result.cells.empty()) return std::nullopt;
  return result;
}

SweepResult load_or_run_sweep(const Trace& trace, const SweepConfig& config,
                              const BenchWorkloadInfo& info) {
  const std::string dir = bench_cache_dir();
  if (dir.empty()) return run_capacity_sweep(trace, config, info);

  std::ostringstream name;
  name << "sweep_" << std::hex << config_fingerprint(config, info) << ".csv";
  const std::filesystem::path path = std::filesystem::path(dir) / name.str();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);

  if (!ec && std::filesystem::exists(path)) {
    std::ifstream file(path);
    std::stringstream buffer;
    buffer << file.rdbuf();
    if (auto cached = sweep_from_csv(buffer.str())) {
      cached->workload = info;
      return *cached;
    }
  }
  SweepResult result = run_capacity_sweep(trace, config, info);
  if (!ec) {
    std::ofstream file(path, std::ios::trunc);
    if (file) file << sweep_to_csv(result);
  }
  return result;
}

}  // namespace otac
