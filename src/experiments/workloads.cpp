#include "experiments/workloads.h"

#include <filesystem>
#include <sstream>

#include "trace/trace_io.h"
#include "trace/trace_stats.h"
#include "util/env_config.h"

namespace otac {

WorkloadConfig bench_workload_config(double scale, std::uint64_t seed) {
  WorkloadConfig config;  // defaults are the calibrated paper-like shape
  config.seed = seed;
  return scaled(config, scale);
}

Trace load_bench_trace(double scale, std::uint64_t seed) {
  const WorkloadConfig config = bench_workload_config(scale, seed);
  const std::string dir = bench_cache_dir();
  if (dir.empty()) return TraceGenerator{config}.generate();

  // Fingerprint the shape knobs so config changes invalidate the cache.
  std::uint64_t fp = 0xcbf29ce484222325ULL;
  const auto mix = [&fp](double v) {
    fp ^= static_cast<std::uint64_t>(v * 1e6);
    fp *= 0x100000001b3ULL;
  };
  mix(config.one_time_object_fraction);
  mix(config.one_time_access_share);
  mix(config.horizon_days);
  mix(config.weight_noise);
  mix(config.weight_owner_quality);
  mix(config.weight_type);
  mix(config.sigmoid_tau);
  mix(config.count_score_beta);
  mix(config.count_tail_alpha);
  mix(config.decay_shape);
  mix(config.decay_scale_days);
  mix(static_cast<double>(config.type_popularity_rotation_days));
  for (const double s : config.resolution_size_bytes) mix(s);
  for (const double m : config.type_mix) mix(m);
  std::ostringstream name;
  name << "trace_s" << seed << "_x" << scale << "_p" << config.num_photos
       << "_" << std::hex << fp << ".bin";
  const std::filesystem::path path = std::filesystem::path(dir) / name.str();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (!ec && std::filesystem::exists(path)) {
    try {
      return load_trace(path.string());
    } catch (const std::exception&) {
      // Corrupt cache: fall through and regenerate.
    }
  }
  Trace trace = TraceGenerator{config}.generate();
  if (!ec) {
    try {
      save_trace(trace, path.string());
    } catch (const std::exception&) {
      // Cache write failure is non-fatal.
    }
  }
  return trace;
}

BenchWorkloadInfo describe(const Trace& trace, double scale,
                           std::uint64_t seed) {
  const TraceStats stats = compute_trace_stats(trace);
  BenchWorkloadInfo info;
  info.seed = seed;
  info.scale = scale;
  info.requests = stats.total_requests;
  info.photos = stats.distinct_objects;
  info.total_object_bytes = stats.total_object_bytes;
  info.mean_photo_size =
      stats.distinct_objects
          ? stats.total_object_bytes / static_cast<double>(stats.distinct_objects)
          : 0.0;
  return info;
}

std::uint64_t map_paper_gb(double paper_gb, double total_object_bytes) {
  const double fraction = paper_gb / kPaperDatasetGb;
  return static_cast<std::uint64_t>(fraction * total_object_bytes);
}

}  // namespace otac
