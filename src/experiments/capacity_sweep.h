// The experiment matrix behind Figs. 2 and 6-10: every (policy, admission
// mode, capacity) cell of one trace, simulated once and cached on disk so
// each figure binary just projects its metric out of the shared result.
#pragma once

#include <optional>
#include <vector>

#include "core/intelligent_cache.h"
#include "experiments/workloads.h"

namespace otac {

struct SweepConfig {
  std::vector<double> paper_gb = {2, 4, 6, 8, 10, 12, 14, 16, 18, 20};
  std::vector<PolicyKind> policies = {PolicyKind::lru, PolicyKind::fifo,
                                      PolicyKind::s3lru, PolicyKind::arc,
                                      PolicyKind::lirs};
  std::vector<AdmissionMode> modes = {AdmissionMode::original,
                                      AdmissionMode::proposal,
                                      AdmissionMode::ideal};
  bool include_belady = true;
  double lirs_lir_fraction = 0.9;

  /// Distinguishes incompatible cached results (bump when cell semantics
  /// change).
  int version = 1;
};

struct SweepCell {
  PolicyKind policy{};
  AdmissionMode mode{};
  double paper_gb = 0.0;
  std::uint64_t capacity_bytes = 0;

  double file_hit_rate = 0.0;
  double byte_hit_rate = 0.0;
  double file_write_rate = 0.0;
  double byte_write_rate = 0.0;
  double latency_us = 0.0;
  double criteria_m = 0.0;
  std::uint64_t insertions = 0;
  double inserted_bytes = 0.0;
  std::uint64_t rejected = 0;
};

struct SweepResult {
  BenchWorkloadInfo workload;
  std::vector<SweepCell> cells;

  [[nodiscard]] std::optional<SweepCell> find(PolicyKind policy,
                                              AdmissionMode mode,
                                              double paper_gb) const;
};

/// Run the matrix (no caching).
[[nodiscard]] SweepResult run_capacity_sweep(const Trace& trace,
                                             const SweepConfig& config,
                                             const BenchWorkloadInfo& info);

/// Disk-cached variant keyed on (seed, scale, sweep config).
[[nodiscard]] SweepResult load_or_run_sweep(const Trace& trace,
                                            const SweepConfig& config,
                                            const BenchWorkloadInfo& info);

/// CSV round-trip (exposed for tests).
[[nodiscard]] std::string sweep_to_csv(const SweepResult& result);
[[nodiscard]] std::optional<SweepResult> sweep_from_csv(const std::string& csv);

}  // namespace otac
