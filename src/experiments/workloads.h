// Benchmark workload presets: the default QQPhoto-like trace used by every
// bench binary, scaled by OTAC_SCALE and seeded by OTAC_SEED so all
// figure/table harnesses agree on the input.
#pragma once

#include "trace/trace.h"
#include "trace/trace_generator.h"

namespace otac {

struct BenchWorkloadInfo {
  std::uint64_t seed = 0;
  double scale = 1.0;
  std::uint64_t requests = 0;
  std::uint64_t photos = 0;
  double total_object_bytes = 0.0;
  double mean_photo_size = 0.0;
};

/// The reference workload: 9 simulated days, ~400k photos at scale 1.
[[nodiscard]] WorkloadConfig bench_workload_config(double scale,
                                                   std::uint64_t seed);

/// Generate (or reuse a disk-cached copy of) the bench trace.
/// The trace binary is cached under the OTAC_CACHE_DIR so the
/// one-binary-per-figure harnesses don't regenerate it.
[[nodiscard]] Trace load_bench_trace(double scale, std::uint64_t seed);

[[nodiscard]] BenchWorkloadInfo describe(const Trace& trace, double scale,
                                         std::uint64_t seed);

/// The paper's evaluated dataset is ~450 GB (14M objects, 1:100 sample);
/// its capacity axis 2-20 GB is 0.44%-4.4% of that. map_paper_gb turns a
/// paper-axis "GB" into a byte capacity representing the same fraction of
/// *our* dataset.
inline constexpr double kPaperDatasetGb = 450.0;

[[nodiscard]] std::uint64_t map_paper_gb(double paper_gb,
                                         double total_object_bytes);

}  // namespace otac
