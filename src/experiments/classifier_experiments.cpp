#include "experiments/classifier_experiments.h"

#include <numeric>

#include "core/features.h"
#include "core/trainer.h"
#include "ml/adaboost.h"
#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/logistic.h"
#include "ml/mlp.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"

namespace otac {

ml::Dataset build_classifier_dataset(const Trace& trace,
                                     const NextAccessInfo& oracle, double m,
                                     int records_per_minute) {
  ml::Dataset data{FeatureExtractor::feature_names()};
  FeatureExtractor extractor{trace.catalog};
  std::array<float, FeatureExtractor::kFeatureCount> row{};

  std::int64_t current_minute = std::numeric_limits<std::int64_t>::min();
  int minute_count = 0;
  const std::uint64_t full_knowledge = trace.requests.size();

  for (std::uint64_t i = 0; i < trace.requests.size(); ++i) {
    const Request& request = trace.requests[i];
    const PhotoMeta& photo = trace.catalog.photo(request.photo);
    const std::int64_t minute = request.time.seconds / kSecondsPerMinute;
    if (minute != current_minute) {
      current_minute = minute;
      minute_count = 0;
    }
    if (minute_count < records_per_minute) {
      ++minute_count;
      extractor.extract(request, photo, row);
      data.add_row(row, DailyTrainer::label_of(oracle, i, m, full_knowledge));
    }
    extractor.observe(request, photo);
  }
  return data;
}

std::vector<Table1Row> run_table1(const ml::Dataset& data,
                                  const Table1Config& config) {
  // Subsample once so every algorithm sees the same rows.
  const ml::Dataset* working = &data;
  ml::Dataset reduced;
  if (config.max_rows > 0 && data.num_rows() > config.max_rows) {
    Rng rng{config.seed};
    std::vector<std::size_t> keep(data.num_rows());
    std::iota(keep.begin(), keep.end(), 0);
    for (std::size_t i = 0; i < config.max_rows; ++i) {
      const std::size_t j = i + rng.next_below(keep.size() - i);
      std::swap(keep[i], keep[j]);
    }
    keep.resize(config.max_rows);
    reduced = data.subset_rows(keep);
    working = &reduced;
  }

  const std::vector<std::pair<std::string, ml::ClassifierFactory>> algorithms =
      {
          {"Naive Bayes",
           [] { return std::make_unique<ml::GaussianNaiveBayes>(); }},
          {"Decision Tree",
           [] { return std::make_unique<ml::DecisionTree>(); }},
          {"BP NN", [] { return std::make_unique<ml::MlpClassifier>(); }},
          {"KNN", [] { return std::make_unique<ml::KnnClassifier>(); }},
          {"AdaBoost", [] { return std::make_unique<ml::AdaBoost>(); }},
          {"Random Forest",
           [] { return std::make_unique<ml::RandomForest>(); }},
          {"Logistic Regression",
           [] { return std::make_unique<ml::LogisticRegression>(); }},
      };

  std::vector<Table1Row> rows;
  rows.reserve(algorithms.size());
  for (const auto& [name, factory] : algorithms) {
    Rng rng{config.seed};  // identical folds for every algorithm
    Table1Row row;
    row.algorithm = name;
    row.metrics = ml::cross_validate(*working, factory, config.folds, rng);
    rows.push_back(std::move(row));
  }
  return rows;
}

TreeConfigFacts tree_config_facts(const ml::Dataset& data,
                                  std::size_t max_splits) {
  ml::DecisionTreeConfig config;
  config.max_splits = max_splits;
  ml::DecisionTree tree{config};
  tree.fit(data);

  TreeConfigFacts facts;
  facts.splits = tree.split_count();
  facts.height = tree.height();
  double total = 0.0;
  for (std::size_t i = 0; i < data.num_rows(); ++i) {
    total += static_cast<double>(tree.decision_path_length(data.row(i)));
  }
  facts.mean_comparisons =
      data.num_rows() ? total / static_cast<double>(data.num_rows()) : 0.0;
  return facts;
}

std::vector<DayClassifierMetrics> run_daily_classification(
    const Trace& trace, PolicyKind policy, std::uint64_t capacity_bytes) {
  const IntelligentCache system{trace};
  RunConfig config;
  config.policy = policy;
  config.capacity_bytes = capacity_bytes;
  config.mode = AdmissionMode::proposal;
  return system.run(config).daily;
}

}  // namespace otac
