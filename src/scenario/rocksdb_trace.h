// RocksDB block-cache trace adapter: read/write the de-facto interchange
// format for real block-cache access logs (the field layout of
// BlockCacheTraceRecord in RocksDB's trace_replay/block_cache_tracer.h)
// and map records onto otac::Trace for replay through the simulator.
//
// The binary container is ours (RocksDB's on-disk framing is tied to its
// internal Slice/varint encoders); the *fields* are theirs: access time in
// microseconds, block key, block size, column family, LSM level, caller,
// no_insert, get id. Field mapping onto the photo-trace model:
//
//   block key        -> photo      (dense-remapped by import_requests_csv)
//   cf_id            -> owner      (dense-remapped likewise)
//   block_size       -> size_bytes; also buckets the resolution letter
//                       a..o against the synthetic ladder
//                       (WorkloadConfig::resolution_size_bytes) so the
//                       type feature keeps its "small block / large block"
//                       meaning; block_type parity picks png/jpg
//   caller           -> terminal   (user-facing Get/MultiGet/Iterator ->
//                       pc, background Prefetch/Compaction/Flush -> mobile)
//   access_time_us   -> time_s     (floor to whole simulated seconds)
//
// Conversion funnels through export-format CSV into the existing
// import_requests_csv dense-remap path (trace/trace_io.h), so imported
// RocksDB traces get exactly the same validation, id-compaction, and
// upload-time approximation as any other foreign log.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "trace/trace.h"

namespace otac::scenario {

inline constexpr std::uint32_t kRocksdbTraceMagic = 0x52424354;  // "RBCT"
inline constexpr std::uint32_t kRocksdbTraceVersion = 1;

/// Callers that can touch the block cache (subset of RocksDB's
/// TableReaderCaller, same user-facing/background split).
enum class RocksdbCaller : std::uint8_t {
  get = 0,
  multiget = 1,
  iterator = 2,
  prefetch = 3,
  compaction = 4,
  flush = 5,
};
inline constexpr int kRocksdbCallerCount = 6;

/// One block access, field-for-field the useful core of RocksDB's
/// BlockCacheTraceRecord.
struct RocksdbTraceRecord {
  std::uint64_t access_time_us = 0;  ///< wall micros in the source system
  std::uint64_t block_key = 0;       ///< cache key of the block
  std::uint64_t get_id = 0;          ///< issuing Get, 0 if none
  std::uint32_t block_size = 0;      ///< bytes
  std::uint32_t cf_id = 0;           ///< column family
  std::uint32_t level = 0;           ///< LSM level of the SST file
  std::uint8_t block_type = 0;       ///< data/index/filter/... ordinal
  std::uint8_t caller = 0;           ///< RocksdbCaller ordinal
  std::uint8_t no_insert = 0;        ///< 1 = access bypassed insertion

  friend bool operator==(const RocksdbTraceRecord&,
                         const RocksdbTraceRecord&) = default;
};

/// Serialize records (magic | version | count | packed fields per record).
/// Field-by-field, fixed width, no struct padding on the wire.
void write_rocksdb_trace(const std::vector<RocksdbTraceRecord>& records,
                         std::ostream& out);

/// Parse a binary record stream. Throws std::runtime_error on bad
/// magic/version, a count the stream cannot hold, or a short read.
[[nodiscard]] std::vector<RocksdbTraceRecord> read_rocksdb_trace(
    std::istream& in);

/// Map records onto a replayable Trace via the import_requests_csv
/// dense-remap path. Records are stably sorted by access time first (real
/// logs interleave writer threads). Throws std::runtime_error on an empty
/// record set or a zero-sized block.
[[nodiscard]] Trace trace_from_rocksdb_records(
    std::vector<RocksdbTraceRecord> records);

/// read_rocksdb_trace + trace_from_rocksdb_records.
[[nodiscard]] Trace import_rocksdb_trace(std::istream& in);

/// CSV flavour of the reader: header
/// `access_time_us,block_key,get_id,block_size,cf_id,level,block_type,caller,no_insert`
/// then one record per line. Throws std::runtime_error with the 1-based
/// line number on malformed input.
[[nodiscard]] std::vector<RocksdbTraceRecord> read_rocksdb_trace_csv(
    std::istream& in);

/// Deterministic synthetic record set for tests and the registry's
/// `rocksdb_blockcache` scenario: a Zipf-skewed point-read stream over a
/// keyspace of data blocks mixed with periodic compaction scans, the
/// shape block_cache_pysim simulates. Pure function of (seed, records).
[[nodiscard]] std::vector<RocksdbTraceRecord> synth_rocksdb_records(
    std::uint64_t seed, std::size_t records);

}  // namespace otac::scenario
