#include "scenario/rocksdb_trace.h"

#include <algorithm>
#include <array>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "trace/trace_io.h"
#include "trace/workload_config.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace otac::scenario {

namespace {

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("rocksdb_trace: truncated stream");
  return value;
}

/// On-wire bytes per record: fixed-width fields, no padding.
constexpr std::uint64_t kWireRecordBytes = 8 + 8 + 8 + 4 + 4 + 4 + 1 + 1 + 1;

/// Bytes left between the current position and the end of a seekable
/// stream; max() when the stream cannot be positioned.
std::uint64_t remaining_bytes(std::istream& in) {
  const std::istream::pos_type current = in.tellg();
  if (current == std::istream::pos_type(-1)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(current);
  if (end == std::istream::pos_type(-1) || end < current) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return static_cast<std::uint64_t>(end - current);
}

/// Resolution letter for a block size, bucketed against the synthetic
/// ladder so "small block" and "large block" land on the same type codes
/// the classifier sees on photo traces. The bucket boundary is the
/// geometric midpoint between adjacent ladder medians.
Resolution resolution_for_size(std::uint32_t size_bytes) {
  const WorkloadConfig defaults{};
  int index = kResolutionCount - 1;
  for (int r = 0; r + 1 < kResolutionCount; ++r) {
    const double upper = defaults.resolution_size_bytes[std::size_t(r)] *
                         (defaults.resolution_size_bytes[std::size_t(r) + 1] /
                          defaults.resolution_size_bytes[std::size_t(r)]) *
                         0.5;
    if (static_cast<double>(size_bytes) <= upper) {
      index = r;
      break;
    }
  }
  return static_cast<Resolution>(index);
}

bool is_user_facing(std::uint8_t caller) {
  switch (static_cast<RocksdbCaller>(caller)) {
    case RocksdbCaller::get:
    case RocksdbCaller::multiget:
    case RocksdbCaller::iterator:
      return true;
    case RocksdbCaller::prefetch:
    case RocksdbCaller::compaction:
    case RocksdbCaller::flush:
      return false;
  }
  return false;
}

template <typename T>
T parse_field(const std::string& field, std::size_t line) {
  try {
    std::size_t used = 0;
    const unsigned long long value = std::stoull(field, &used);
    if (used != field.size() || field.find('-') != std::string::npos) {
      throw std::invalid_argument("trailing characters");
    }
    if (value > std::numeric_limits<T>::max()) {
      throw std::out_of_range("field overflow");
    }
    return static_cast<T>(value);
  } catch (const std::exception&) {
    throw std::runtime_error("rocksdb_trace: bad field '" + field +
                             "' at line " + std::to_string(line));
  }
}

}  // namespace

void write_rocksdb_trace(const std::vector<RocksdbTraceRecord>& records,
                         std::ostream& out) {
  write_pod(out, kRocksdbTraceMagic);
  write_pod(out, kRocksdbTraceVersion);
  write_pod(out, static_cast<std::uint64_t>(records.size()));
  for (const RocksdbTraceRecord& record : records) {
    write_pod(out, record.access_time_us);
    write_pod(out, record.block_key);
    write_pod(out, record.get_id);
    write_pod(out, record.block_size);
    write_pod(out, record.cf_id);
    write_pod(out, record.level);
    write_pod(out, record.block_type);
    write_pod(out, record.caller);
    write_pod(out, record.no_insert);
  }
  if (!out) throw std::runtime_error("rocksdb_trace: write failure");
}

std::vector<RocksdbTraceRecord> read_rocksdb_trace(std::istream& in) {
  if (read_pod<std::uint32_t>(in) != kRocksdbTraceMagic) {
    throw std::runtime_error("rocksdb_trace: bad magic");
  }
  if (read_pod<std::uint32_t>(in) != kRocksdbTraceVersion) {
    throw std::runtime_error("rocksdb_trace: unsupported version");
  }
  const auto count = read_pod<std::uint64_t>(in);
  // Bound the declared count against what the stream can actually hold
  // before allocating (same defense as trace_io's read_vector).
  if (count > remaining_bytes(in) / kWireRecordBytes) {
    throw std::runtime_error("rocksdb_trace: record count exceeds stream size");
  }
  std::vector<RocksdbTraceRecord> records(count);
  for (RocksdbTraceRecord& record : records) {
    record.access_time_us = read_pod<std::uint64_t>(in);
    record.block_key = read_pod<std::uint64_t>(in);
    record.get_id = read_pod<std::uint64_t>(in);
    record.block_size = read_pod<std::uint32_t>(in);
    record.cf_id = read_pod<std::uint32_t>(in);
    record.level = read_pod<std::uint32_t>(in);
    record.block_type = read_pod<std::uint8_t>(in);
    record.caller = read_pod<std::uint8_t>(in);
    record.no_insert = read_pod<std::uint8_t>(in);
  }
  return records;
}

std::vector<RocksdbTraceRecord> read_rocksdb_trace_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) ||
      line.rfind("access_time_us,block_key,get_id,block_size", 0) != 0) {
    throw std::runtime_error("rocksdb_trace: missing/invalid CSV header");
  }
  std::vector<RocksdbTraceRecord> records;
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream fields{line};
    std::array<std::string, 9> field;
    for (std::size_t i = 0; i < field.size(); ++i) {
      const char delim = i + 1 < field.size() ? ',' : '\n';
      if (!std::getline(fields, field[i], delim)) {
        throw std::runtime_error("rocksdb_trace: short row at line " +
                                 std::to_string(lineno));
      }
    }
    RocksdbTraceRecord record;
    record.access_time_us = parse_field<std::uint64_t>(field[0], lineno);
    record.block_key = parse_field<std::uint64_t>(field[1], lineno);
    record.get_id = parse_field<std::uint64_t>(field[2], lineno);
    record.block_size = parse_field<std::uint32_t>(field[3], lineno);
    record.cf_id = parse_field<std::uint32_t>(field[4], lineno);
    record.level = parse_field<std::uint32_t>(field[5], lineno);
    record.block_type = parse_field<std::uint8_t>(field[6], lineno);
    record.caller = parse_field<std::uint8_t>(field[7], lineno);
    record.no_insert = parse_field<std::uint8_t>(field[8], lineno);
    records.push_back(record);
  }
  return records;
}

Trace trace_from_rocksdb_records(std::vector<RocksdbTraceRecord> records) {
  if (records.empty()) {
    throw std::runtime_error("rocksdb_trace: empty record set");
  }
  // Real logs interleave writer threads; the photo-trace invariant is
  // time-sorted requests, so sort stably (ties keep log order) before
  // funnelling through the CSV import path.
  std::stable_sort(records.begin(), records.end(),
                   [](const RocksdbTraceRecord& a, const RocksdbTraceRecord& b) {
                     return a.access_time_us < b.access_time_us;
                   });
  const std::uint64_t epoch_us = records.front().access_time_us;
  std::ostringstream csv;
  csv << "time_s,photo,owner,type,size_bytes,terminal\n";
  for (const RocksdbTraceRecord& record : records) {
    if (record.block_size == 0) {
      throw std::runtime_error("rocksdb_trace: zero-sized block " +
                               std::to_string(record.block_key));
    }
    const PhotoType type{resolution_for_size(record.block_size),
                         record.block_type % 2 == 0 ? PhotoFormat::png
                                                    : PhotoFormat::jpg};
    csv << (record.access_time_us - epoch_us) / 1'000'000 << ",b"
        << record.block_key << ",cf" << record.cf_id << ','
        << type_name(type) << ',' << record.block_size << ','
        << (is_user_facing(record.caller) ? "pc" : "mobile") << '\n';
  }
  std::istringstream in{csv.str()};
  return import_requests_csv(in);
}

Trace import_rocksdb_trace(std::istream& in) {
  return trace_from_rocksdb_records(read_rocksdb_trace(in));
}

std::vector<RocksdbTraceRecord> synth_rocksdb_records(std::uint64_t seed,
                                                      std::size_t records) {
  // Point reads: Zipf-skewed over a data-block keyspace, Poisson-ish
  // arrivals. Compaction scans: every ~2000 reads a background sweep
  // touches a run of consecutive cold keys exactly once — the one-time
  // flood the admission gate exists for.
  Rng rng{seed};
  const std::uint64_t data_blocks = std::max<std::uint64_t>(
      512, static_cast<std::uint64_t>(records) / 8);
  ZipfSampler hot{data_blocks, 0.9};
  std::vector<RocksdbTraceRecord> out;
  out.reserve(records);
  std::uint64_t now_us = 0;
  // Point-read gaps pace the stream so the whole record set spans ~2.5
  // simulated days regardless of count — enough for the daily retrain
  // schedule to fire when the records are replayed through the simulator.
  const std::uint64_t mean_gap_us =
      std::max<std::uint64_t>(1, 216'000'000'000ULL / records);
  std::uint64_t scan_cursor = data_blocks;  // cold keys live past the hot set
  std::uint64_t get_id = 0;
  while (out.size() < records) {
    now_us += mean_gap_us / 4 + rng.next_below(mean_gap_us + mean_gap_us / 2);
    if (!out.empty() && out.size() % 2'000 == 0) {
      const std::uint64_t run = 64 + rng.next_below(192);
      for (std::uint64_t i = 0; i < run && out.size() < records; ++i) {
        RocksdbTraceRecord record;
        record.access_time_us = now_us;
        record.block_key = scan_cursor++;
        record.block_size = 32'768 + static_cast<std::uint32_t>(
                                         rng.next_below(32'768));
        record.cf_id = 1;
        record.level = 3 + static_cast<std::uint32_t>(rng.next_below(3));
        record.block_type = 0;
        record.caller = static_cast<std::uint8_t>(RocksdbCaller::compaction);
        record.no_insert = 0;
        out.push_back(record);
        now_us += 50;
      }
      continue;
    }
    RocksdbTraceRecord record;
    record.access_time_us = now_us;
    record.block_key = hot.sample(rng) - 1;
    record.block_size =
        2'048 + static_cast<std::uint32_t>(rng.next_below(14'336));
    record.cf_id = static_cast<std::uint32_t>(rng.next_below(4));
    record.level = static_cast<std::uint32_t>(rng.next_below(3));
    record.block_type = static_cast<std::uint8_t>(rng.next_below(4));
    record.caller = static_cast<std::uint8_t>(
        rng.next_below(8) < 6 ? RocksdbCaller::get : RocksdbCaller::iterator);
    record.no_insert = 0;
    record.get_id = ++get_id;
    out.push_back(record);
  }
  return out;
}

}  // namespace otac::scenario
