// Cloud block-storage synthetic workload: the access shape of virtual-disk
// caches (PAPERS.md, "Optimizing SSD Caches for Cloud Block Storage
// Systems Using Machine Learning Approaches") rather than photo serving —
// long sequential runs of large blocks (VM boot, backup, scan traffic)
// interleaved with a small, intensely hot set of random-I/O blocks
// (database pages, filesystem metadata). Sequential runs are mostly
// one-time: admitting them wears the SSD for nothing, which is exactly
// the regime where the admission gate's payoff differs from photo
// traffic.
//
// Built on src/trace's components (DiurnalModel arrivals, ZipfSampler hot
// set, Lomax run lengths) but emitting a Trace directly: volumes map to
// owners, blocks to photos, run blocks to large `o`-resolution objects and
// hot blocks to small `b`-resolution objects.
#pragma once

#include <cstdint>

#include "trace/trace.h"

namespace otac::scenario {

struct CloudBlockConfig {
  std::uint64_t seed = 7;

  std::uint32_t volumes = 48;        ///< virtual disks, mapped to owners
  std::uint32_t hot_blocks = 20'000; ///< random-I/O working set (photos)
  double hot_zipf_alpha = 0.95;      ///< skew within the hot set
  std::uint32_t hot_block_bytes = 4'096;
  std::uint32_t run_block_bytes = 65'536;

  /// Fraction of *requests* that belong to sequential runs.
  double sequential_share = 0.45;
  /// Lomax-tailed run length in blocks (mean-ish scale; capped).
  double run_scale_blocks = 64.0;
  double run_shape = 1.4;
  std::uint32_t max_run_blocks = 1'024;
  /// Probability a run re-reads a previously generated extent (restore /
  /// repeated scan) instead of touching fresh cold blocks.
  double run_reuse_probability = 0.15;

  double horizon_days = 3.0;
  std::size_t requests = 400'000;  ///< approximate (runs complete whole)
  DiurnalConfig diurnal{};
};

/// Scale request volume and the hot working set by `factor`, keeping the
/// shape knobs (mirrors otac::scaled for WorkloadConfig).
[[nodiscard]] CloudBlockConfig scaled(CloudBlockConfig config, double factor);

/// Deterministic for a fixed config: same catalog, same request stream,
/// same horizon. Requests come out sorted by (time, photo).
[[nodiscard]] Trace generate_cloud_block_trace(const CloudBlockConfig& config);

}  // namespace otac::scenario
