// Central registry of every workload-scenario name (src/scenario). A
// scenario spec registered in scenario::all() may only use a name listed
// here: `tools/otac_lint` (rule `scenario-registry`) checks every string
// literal passed to scenario::find() against this table, and the registry
// itself cross-checks at construction so a renamed scenario breaks the
// suite loudly instead of silently dropping out of the CI matrix.
//
// To add a scenario: add the name here (keep the list sorted), register
// the spec in src/scenario/registry.cpp, record its tolerance envelope in
// tools/scenario_gate/envelopes.json, and re-run `scripts/ci.sh scenarios`.
#pragma once

#include <string_view>

namespace otac::scenario {

inline constexpr std::string_view kKnownScenarios[] = {
    "churn_purge",      "cloud_block",    "diurnal_shift", "flash_crowd",
    "rocksdb_blockcache", "scan_flood",   "shard_failover",
};

[[nodiscard]] constexpr bool is_known_scenario(std::string_view name) {
  for (const std::string_view known : kKnownScenarios) {
    if (known == name) return true;
  }
  return false;
}

}  // namespace otac::scenario
