// Scenario registry: turn a registered name into a ready-to-replay Trace
// plus the configuration (faults, resilience, sharding, capacity) and a
// loose expected-metric envelope for the run. Two scenario families:
//
//   adapters     — workloads the synthetic photo generator cannot produce:
//                  a RocksDB block-cache record stream (rocksdb_trace.h)
//                  and a cloud block-storage volume workload
//                  (cloud_block.h);
//   adversarial  — stress shapes carved out of the synthetic base trace:
//                  flash crowd (the chaos.flash_crowd fluid overload),
//                  sequential scan flood, key churn/retention purge,
//                  diurnal phase shift, and a shard-failover key
//                  redistribution replay.
//
// Names are registry-pinned: every spec's name must appear in
// scenario_names.h (all() cross-checks at first use and throws otherwise),
// and tools/otac_lint rejects find("...") calls naming anything else. The
// Envelope here is a broad sanity band checked by bench/micro_scenarios at
// full scale; the tight per-metric regression windows CI enforces live in
// tools/scenario_gate/envelopes.json.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/sharded_cache.h"
#include "trace/trace.h"
#include "util/failpoint.h"

namespace otac::scenario {

/// One armed failpoint (name + trigger), as in the chaos harness. All
/// registered scenarios use self-clearing triggers.
struct ScenarioFault {
  std::string failpoint;
  fail::Spec spec{};
};

/// Broad sanity band for one scenario run (either admission mode). The
/// bench refuses to publish numbers that fall outside it at full scale —
/// it catches "the scenario no longer exercises what it claims to", not
/// small regressions (those are tools/scenario_gate's job).
struct Envelope {
  double min_file_hit_rate = 0.0;
  double max_file_hit_rate = 1.0;
  double max_byte_write_rate = 1.0;
  double max_shed_rate = 0.0;
};

struct ScenarioSpec {
  std::string name;
  std::string description;
  /// Builds the workload; deterministic in (seed, scale). scale = 1.0 is
  /// the CI size; tests run smaller.
  Trace (*make_trace)(std::uint64_t seed, double scale) = nullptr;
  std::vector<ScenarioFault> faults;
  ResilienceConfig resilience{};
  std::size_t shards = 4;
  /// 0 = one worker per shard; scenarios with per-request failpoints pin 1
  /// so the evaluation order is a pure function of the trace.
  std::size_t threads = 0;
  /// Cache capacity as a fraction of the workload's total object bytes.
  double capacity_fraction = 0.02;
  Envelope envelope{};
};

/// All registered scenarios, name-sorted — same order and names as
/// scenario_names.h kKnownScenarios (cross-checked; throws
/// std::logic_error on drift).
[[nodiscard]] const std::vector<ScenarioSpec>& all();

/// Lookup by name; throws std::invalid_argument listing the known names.
[[nodiscard]] const ScenarioSpec& find(std::string_view name);

/// True when OTAC_FAILPOINT_* sites are compiled in; without them the
/// fault-driven scenarios (flash_crowd) run fault-free.
[[nodiscard]] bool failpoints_compiled() noexcept;

/// The per-(scenario, mode) numbers exported to BENCH_scenarios.json and
/// gated by tools/scenario_gate.
struct ScenarioMetrics {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t insertions = 0;  ///< SSD writes
  std::uint64_t shed_requests = 0;
  std::uint64_t degraded_admits = 0;
  double file_hit_rate = 0.0;
  double byte_write_rate = 0.0;
  double shed_rate = 0.0;
  double p99_latency_us = 0.0;  ///< 0 when the run exported no histogram
  int trainings = 0;

  [[nodiscard]] bool within(const Envelope& envelope) const noexcept {
    return file_hit_rate >= envelope.min_file_hit_rate &&
           file_hit_rate <= envelope.max_file_hit_rate &&
           byte_write_rate <= envelope.max_byte_write_rate &&
           shed_rate <= envelope.max_shed_rate;
  }
};

[[nodiscard]] ScenarioMetrics summarize(const RunResult& result);

/// Owns one scenario's workload (trace + oracle + memoized hit-rate
/// estimate) and replays it. Construction is the expensive part; run()
/// arms the spec's failpoints, replays, and disarms — arming resets fire
/// counters, so repeated run() calls are bit-identical.
class ScenarioRunner {
 public:
  ScenarioRunner(const ScenarioSpec& spec, std::uint64_t seed, double scale);

  ScenarioRunner(const ScenarioRunner&) = delete;
  ScenarioRunner& operator=(const ScenarioRunner&) = delete;

  [[nodiscard]] RunResult run(AdmissionMode mode) const;

  /// The replay configuration run() uses; exposed so tests can rerun the
  /// same workload with overridden sharding.
  [[nodiscard]] RunConfig config(AdmissionMode mode) const;
  [[nodiscard]] RunResult run_with(const RunConfig& config) const;

  [[nodiscard]] const ScenarioSpec& spec() const noexcept { return *spec_; }
  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }

 private:
  const ScenarioSpec* spec_;
  Trace trace_;
  IntelligentCache system_;
  ShardedCache sharded_;
  std::uint64_t capacity_bytes_ = 0;
  double hit_rate_estimate_ = 0.0;
};

}  // namespace otac::scenario
