#include "scenario/registry.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "scenario/cloud_block.h"
#include "scenario/rocksdb_trace.h"
#include "scenario/scenario_names.h"
#include "trace/trace_generator.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace otac::scenario {

namespace {

/// Scale of the synthetic photo base trace the adversarial scenarios carve
/// up, relative to the paper-sized default config, at scenario scale 1.0.
constexpr double kBaseScale = 0.05;

[[nodiscard]] fail::Spec window_spec(std::uint64_t from, std::uint64_t to) {
  fail::Spec spec;
  spec.trigger = fail::Trigger::window;
  spec.from = from;
  spec.to = to;
  return spec;
}

/// Append a photo cloned from / shaped like `meta`, keeping latent_score
/// aligned with the catalog (the synthetic generator fills it per photo).
PhotoId append_photo(Trace& trace, const PhotoMeta& meta) {
  const PhotoId id = trace.catalog.add_photo(meta);
  if (!trace.latent_score.empty()) trace.latent_score.push_back(0.0F);
  return id;
}

// --- Adversarial trace builders -------------------------------------------

Trace make_flash_crowd_trace(std::uint64_t seed, double scale) {
  return generate_default_trace(kBaseScale * scale, seed);
}

/// Base trace + periodic scan bursts: each burst streams a fresh set of
/// large one-time objects (a backup/scrub pass) dense in time. Admitting
/// them evicts the hot set for objects that never return.
Trace make_scan_flood_trace(std::uint64_t seed, double scale) {
  Trace trace = generate_default_trace(kBaseScale * scale, seed);
  Rng rng{seed ^ 0x5ca9f100dULL};
  constexpr int kBursts = 3;
  const std::size_t burst_requests = trace.requests.size() / 8;
  const UserId scanner =
      static_cast<UserId>(trace.catalog.owner_count() - 1);
  std::vector<Request> extra;
  extra.reserve(burst_requests * kBursts);
  for (int burst = 0; burst < kBursts; ++burst) {
    SimTime t{trace.horizon.seconds * (burst + 1) / (kBursts + 1)};
    for (std::size_t i = 0; i < burst_requests; ++i) {
      PhotoMeta meta;
      meta.owner = scanner;
      meta.type = PhotoType{Resolution::o, PhotoFormat::png};
      meta.size_bytes =
          96'000 + static_cast<std::uint32_t>(rng.next_below(64'000));
      meta.upload_time = t - kSecondsPerMinute;
      Request request;
      request.time = t + static_cast<std::int64_t>(i / 64);  // 64 obj/s
      request.photo = append_photo(trace, meta);
      request.terminal = TerminalType::mobile;
      extra.push_back(request);
    }
  }
  const auto by_time_photo = [](const Request& a, const Request& b) {
    return std::pair{a.time.seconds, a.photo} <
           std::pair{b.time.seconds, b.photo};
  };
  const std::size_t base_count = trace.requests.size();
  trace.requests.insert(trace.requests.end(), extra.begin(), extra.end());
  std::inplace_merge(trace.requests.begin(),
                     trace.requests.begin() +
                         static_cast<std::ptrdiff_t>(base_count),
                     trace.requests.end(), by_time_photo);
  trace.horizon = SimTime{
      std::max(trace.horizon.seconds, trace.requests.back().time.seconds + 1)};
  return trace;
}

/// Generational churn: photos live in cohorts; accesses are Zipf within
/// the active cohort (plus a short retention tail into the previous one),
/// and a purged cohort is never touched again. The history table and the
/// model keep paying for keys that will not come back.
Trace make_churn_purge_trace(std::uint64_t seed, double scale) {
  constexpr int kGenerations = 8;
  constexpr std::int64_t kHorizonDays = 4;
  const auto photos_per_gen = static_cast<std::uint32_t>(
      std::max(400.0, 4'000 * scale));
  const auto total_requests =
      static_cast<std::size_t>(std::max(20'000.0, 120'000 * scale));

  Rng rng{seed ^ 0xc8a91ULL};
  Rng time_rng = rng.fork(1);
  const DiurnalModel diurnal{};
  const ZipfSampler within{photos_per_gen, 0.9};

  std::vector<OwnerMeta> owners(kGenerations);
  std::vector<PhotoMeta> photos;
  photos.reserve(std::size_t{kGenerations} * photos_per_gen);
  const std::int64_t gen_seconds = kHorizonDays * kSecondsPerDay / kGenerations;
  for (int gen = 0; gen < kGenerations; ++gen) {
    for (std::uint32_t p = 0; p < photos_per_gen; ++p) {
      PhotoMeta meta;
      meta.owner = static_cast<UserId>(gen);
      meta.type = PhotoType{Resolution::m, PhotoFormat::jpg};
      meta.size_bytes = 12'288 + (p % 512) * 16;
      meta.upload_time = SimTime{gen * gen_seconds} - kSecondsPerMinute;
      photos.push_back(meta);
    }
    owners[static_cast<std::size_t>(gen)].photo_count = photos_per_gen;
  }

  std::vector<Request> requests;
  requests.reserve(total_requests);
  while (requests.size() < total_requests) {
    const std::int64_t day = static_cast<std::int64_t>(
        time_rng.next_below(kHorizonDays));
    const SimTime t{day * kSecondsPerDay +
                    diurnal.sample_second_of_day(time_rng)};
    int gen = static_cast<int>(t.seconds / gen_seconds);
    gen = std::min(gen, kGenerations - 1);
    // Retention tail: 10% of traffic still reads the previous cohort.
    if (gen > 0 && rng.bernoulli(0.1)) gen -= 1;
    Request request;
    request.time = t;
    request.photo = static_cast<PhotoId>(
        static_cast<std::uint64_t>(gen) * photos_per_gen +
        (within.sample(rng) - 1));
    request.terminal =
        rng.bernoulli(0.7) ? TerminalType::mobile : TerminalType::pc;
    requests.push_back(request);
  }
  std::stable_sort(requests.begin(), requests.end(),
                   [](const Request& a, const Request& b) {
                     return std::pair{a.time.seconds, a.photo} <
                            std::pair{b.time.seconds, b.photo};
                   });

  Trace trace;
  trace.catalog = PhotoCatalog{std::move(photos), std::move(owners)};
  trace.requests = std::move(requests);
  trace.horizon = SimTime{kHorizonDays * kSecondsPerDay};
  return trace;
}

/// Mid-trace diurnal phase shift: every request after the midpoint moves
/// +8h, so the access-hour feature the classifier learned in the first
/// half lies about the second half (sortedness is preserved — a constant
/// shift of a sorted suffix).
Trace make_diurnal_shift_trace(std::uint64_t seed, double scale) {
  Trace trace = generate_default_trace(kBaseScale * scale, seed);
  const std::int64_t midpoint = trace.horizon.seconds / 2;
  for (Request& request : trace.requests) {
    if (request.time.seconds >= midpoint) {
      request.time = request.time + 8 * kSecondsPerHour;
    }
  }
  if (!trace.requests.empty()) {
    trace.horizon = SimTime{std::max(trace.horizon.seconds,
                                     trace.requests.back().time.seconds + 1)};
  }
  return trace;
}

/// Shard-failover replay: at the midpoint, shard 0 (of a 4-way partition)
/// "fails" — every photo it owned is re-keyed to a clone, which the
/// SplitMix64 partition scatters across the surviving keyspace. The
/// redistributed keys arrive cold: history entries, cache contents, and
/// learned popularity all belong to the dead key.
Trace make_shard_failover_trace(std::uint64_t seed, double scale) {
  Trace trace = generate_default_trace(kBaseScale * scale, seed);
  constexpr std::size_t kFailedShard = 0;
  constexpr std::size_t kShards = 4;
  const std::int64_t midpoint = trace.horizon.seconds / 2;
  std::vector<PhotoId> clone_of(trace.catalog.photo_count(), kInvalidPhoto);
  for (Request& request : trace.requests) {
    if (request.time.seconds < midpoint) continue;
    if (shard_of_photo(request.photo, kShards) != kFailedShard) continue;
    PhotoId& clone = clone_of[request.photo];
    if (clone == kInvalidPhoto) {
      clone = append_photo(trace, trace.catalog.photo(request.photo));
    }
    request.photo = clone;
  }
  return trace;
}

// --- Adapter trace builders -----------------------------------------------

Trace make_rocksdb_trace(std::uint64_t seed, double scale) {
  const auto records = static_cast<std::size_t>(
      std::max(20'000.0, 150'000 * scale));
  return trace_from_rocksdb_records(synth_rocksdb_records(seed, records));
}

Trace make_cloud_block_trace(std::uint64_t seed, double scale) {
  CloudBlockConfig config;
  config.seed = seed;
  config.requests = 150'000;
  config.hot_blocks = 8'000;
  return generate_cloud_block_trace(scaled(config, std::max(scale, 0.05)));
}

// --- Specs ----------------------------------------------------------------

[[nodiscard]] ScenarioSpec make_churn_purge() {
  ScenarioSpec s;
  s.name = "churn_purge";
  s.description =
      "generational key churn: cohorts go hot, get purged, never return";
  s.make_trace = &make_churn_purge_trace;
  s.envelope = {0.10, 0.999, 0.90, 0.0};
  return s;
}

[[nodiscard]] ScenarioSpec make_cloud_block() {
  ScenarioSpec s;
  s.name = "cloud_block";
  s.description =
      "cloud block-storage volumes: long sequential runs of large blocks "
      "over a small hot random-I/O set";
  s.make_trace = &make_cloud_block_trace;
  s.envelope = {0.05, 0.999, 0.98, 0.0};
  return s;
}

[[nodiscard]] ScenarioSpec make_diurnal_shift() {
  ScenarioSpec s;
  s.name = "diurnal_shift";
  s.description =
      "mid-trace +8h phase shift invalidates the learned access-hour "
      "feature";
  s.make_trace = &make_diurnal_shift_trace;
  s.envelope = {0.05, 0.999, 0.95, 0.0};
  return s;
}

[[nodiscard]] ScenarioSpec make_flash_crowd() {
  ScenarioSpec s;
  s.name = "flash_crowd";
  s.description =
      "chaos.flash_crowd bursts drive a shard through degraded admission "
      "into bounded load shedding";
  s.make_trace = &make_flash_crowd_trace;
  s.faults.push_back({"chaos.flash_crowd", window_spec(1'500, 1'502)});
  s.resilience.overload.enabled = true;
  s.resilience.overload.service_rate_per_s = 0.5;
  s.resilience.overload.flash_crowd_burst = 150.0;
  s.threads = 1;  // pins the failpoint evaluation order
  s.envelope = {0.05, 0.999, 0.95, 0.05};
  return s;
}

[[nodiscard]] ScenarioSpec make_rocksdb_blockcache() {
  ScenarioSpec s;
  s.name = "rocksdb_blockcache";
  s.description =
      "RocksDB block-cache record stream (Zipf point reads + compaction "
      "scans) through the adapter";
  s.make_trace = &make_rocksdb_trace;
  s.envelope = {0.10, 0.999, 0.95, 0.0};
  return s;
}

[[nodiscard]] ScenarioSpec make_scan_flood() {
  ScenarioSpec s;
  s.name = "scan_flood";
  s.description =
      "periodic sequential scans stream large one-time objects through the "
      "hot set";
  s.make_trace = &make_scan_flood_trace;
  s.envelope = {0.05, 0.999, 0.98, 0.0};
  return s;
}

[[nodiscard]] ScenarioSpec make_shard_failover() {
  ScenarioSpec s;
  s.name = "shard_failover";
  s.description =
      "mid-trace shard failure re-keys one shard's working set cold across "
      "the survivors";
  s.make_trace = &make_shard_failover_trace;
  s.envelope = {0.05, 0.999, 0.95, 0.0};
  return s;
}

[[nodiscard]] std::vector<ScenarioSpec> build_all() {
  std::vector<ScenarioSpec> specs;
  specs.push_back(make_churn_purge());
  specs.push_back(make_cloud_block());
  specs.push_back(make_diurnal_shift());
  specs.push_back(make_flash_crowd());
  specs.push_back(make_rocksdb_blockcache());
  specs.push_back(make_scan_flood());
  specs.push_back(make_shard_failover());

  // Registry cross-check: the spec list and scenario_names.h must agree
  // exactly (same names, same order), so a rename breaks loudly here and
  // in otac-lint instead of silently dropping a scenario from CI.
  const std::size_t known = std::size(kKnownScenarios);
  if (specs.size() != known) {
    throw std::logic_error("scenario: spec count != scenario_names.h");
  }
  for (std::size_t i = 0; i < known; ++i) {
    if (specs[i].name != kKnownScenarios[i]) {
      throw std::logic_error("scenario: spec '" + specs[i].name +
                             "' does not match scenario_names.h order");
    }
  }
  return specs;
}

}  // namespace

const std::vector<ScenarioSpec>& all() {
  static const std::vector<ScenarioSpec> specs = build_all();
  return specs;
}

const ScenarioSpec& find(std::string_view name) {
  for (const ScenarioSpec& spec : all()) {
    if (spec.name == name) return spec;
  }
  std::string message = "unknown scenario: ";
  message += name;
  message += " (known:";
  for (const ScenarioSpec& spec : all()) {
    message += ' ';
    message += spec.name;
  }
  message += ')';
  throw std::invalid_argument(message);
}

bool failpoints_compiled() noexcept {
#if defined(OTAC_FAILPOINTS_ENABLED) && OTAC_FAILPOINTS_ENABLED
  return true;
#else
  return false;
#endif
}

ScenarioMetrics summarize(const RunResult& result) {
  ScenarioMetrics m;
  m.requests = result.stats.requests;
  m.hits = result.stats.hits;
  m.insertions = result.stats.insertions;
  m.shed_requests = result.degradation.shed_requests;
  m.degraded_admits = result.degradation.degraded_admits;
  m.file_hit_rate = result.stats.file_hit_rate();
  m.byte_write_rate = result.stats.byte_write_rate();
  m.shed_rate =
      m.requests == 0
          ? 0.0
          : static_cast<double>(m.shed_requests) /
                static_cast<double>(m.requests);
  const auto histogram =
      result.obs.merged.histograms.find("latency.request_us");
  if (histogram != result.obs.merged.histograms.end()) {
    m.p99_latency_us = histogram->second.quantile(0.99);
  }
  m.trainings = result.trainings;
  return m;
}

ScenarioRunner::ScenarioRunner(const ScenarioSpec& spec, std::uint64_t seed,
                               double scale)
    : spec_(&spec),
      trace_(spec.make_trace(seed, scale)),
      system_(trace_),
      sharded_(system_) {
  capacity_bytes_ = static_cast<std::uint64_t>(system_.total_object_bytes() *
                                               spec.capacity_fraction);
  hit_rate_estimate_ = system_.estimate_hit_rate(capacity_bytes_);
}

RunConfig ScenarioRunner::config(AdmissionMode mode) const {
  RunConfig config;
  config.policy = PolicyKind::lru;
  config.capacity_bytes = capacity_bytes_;
  config.mode = mode;
  config.hit_rate_estimate = hit_rate_estimate_;
  config.shards = spec_->shards;
  config.threads = spec_->threads;
  config.resilience = spec_->resilience;
  return config;
}

RunResult ScenarioRunner::run_with(const RunConfig& config) const {
  fail::Registry& registry = fail::Registry::instance();
  registry.disable_all();
  // enable() rearms from scratch (hit/fire counters reset), so repeated
  // runs see the exact same trigger schedule — bit-identical replays.
  for (const ScenarioFault& fault : spec_->faults) {
    registry.enable(fault.failpoint, fault.spec);  // throws on unknown name
  }
  RunResult result = sharded_.run(config);
  registry.disable_all();
  return result;
}

RunResult ScenarioRunner::run(AdmissionMode mode) const {
  return run_with(config(mode));
}

}  // namespace otac::scenario
