#include "scenario/cloud_block.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "trace/diurnal.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace otac::scenario {

namespace {

/// A previously generated sequential extent, kept so later runs can
/// re-read it (restore traffic) instead of always touching cold blocks.
struct Extent {
  PhotoId first = 0;
  std::uint32_t blocks = 0;
};

}  // namespace

CloudBlockConfig scaled(CloudBlockConfig config, double factor) {
  if (factor <= 0.0) {
    throw std::invalid_argument("cloud_block: scale factor must be > 0");
  }
  const auto scale_u32 = [factor](std::uint32_t value) {
    return std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::llround(value * factor)));
  };
  config.hot_blocks = scale_u32(config.hot_blocks);
  config.volumes = scale_u32(config.volumes);
  config.requests = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(static_cast<double>(config.requests) * factor)));
  return config;
}

Trace generate_cloud_block_trace(const CloudBlockConfig& config) {
  if (config.volumes == 0 || config.hot_blocks == 0) {
    throw std::invalid_argument("cloud_block: volumes/hot_blocks must be > 0");
  }
  Rng rng{config.seed};
  Rng time_rng = rng.fork(1);
  Rng size_rng = rng.fork(2);
  const DiurnalModel diurnal{config.diurnal};
  const ZipfSampler hot{config.hot_blocks, config.hot_zipf_alpha};
  const auto horizon_days =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(config.horizon_days));

  Trace trace;
  std::vector<PhotoMeta> photos;
  std::vector<OwnerMeta> owners(config.volumes);
  for (OwnerMeta& owner : owners) {
    owner.active_friends = 0;
    owner.activity = 1.0F;
    owner.quality = 0.0F;
  }

  // Hot blocks exist before the window opens (they back live volumes).
  const PhotoType hot_type{Resolution::b, PhotoFormat::jpg};
  photos.reserve(config.hot_blocks + config.requests / 8);
  for (std::uint32_t block = 0; block < config.hot_blocks; ++block) {
    PhotoMeta meta;
    meta.owner = block % config.volumes;
    meta.type = hot_type;
    meta.size_bytes = config.hot_block_bytes;
    meta.upload_time = from_days(-1.0) - static_cast<std::int64_t>(block % 7);
    photos.push_back(meta);
    owners[meta.owner].photo_count += 1;
  }

  const PhotoType run_type{Resolution::o, PhotoFormat::png};
  std::vector<Extent> extents;
  std::vector<Request> requests;
  requests.reserve(config.requests + config.max_run_blocks);

  const auto draw_time = [&]() -> SimTime {
    const std::int64_t day =
        static_cast<std::int64_t>(time_rng.next_below(
            static_cast<std::uint64_t>(horizon_days)));
    return SimTime{day * kSecondsPerDay +
                   diurnal.sample_second_of_day(time_rng)};
  };

  // sequential_share is a share of *requests*, and a run emits a whole
  // extent at once — so pick the stream that is behind its target share
  // rather than flipping a per-draw coin (a coin would let the ~100-block
  // runs drown the hot stream).
  std::size_t sequential_emitted = 0;
  while (requests.size() < config.requests) {
    const SimTime t = draw_time();
    const bool want_run =
        static_cast<double>(sequential_emitted) <
        config.sequential_share * static_cast<double>(requests.size() + 1);
    if (!want_run) {
      Request request;
      request.time = t;
      request.photo = static_cast<PhotoId>(hot.sample(rng) - 1);
      request.terminal = TerminalType::pc;
      requests.push_back(request);
      continue;
    }

    // One sequential run: reuse a prior extent or carve a fresh one.
    Extent extent;
    if (!extents.empty() && rng.bernoulli(config.run_reuse_probability)) {
      extent = extents[rng.next_below(extents.size())];
    } else {
      const double drawn =
          1.0 + rng.lomax(config.run_shape, config.run_scale_blocks);
      extent.blocks = static_cast<std::uint32_t>(std::min<double>(
          drawn, static_cast<double>(config.max_run_blocks)));
      extent.first = static_cast<PhotoId>(photos.size());
      const UserId volume = static_cast<UserId>(rng.next_below(config.volumes));
      for (std::uint32_t block = 0; block < extent.blocks; ++block) {
        PhotoMeta meta;
        meta.owner = volume;
        meta.type = run_type;
        meta.size_bytes =
            config.run_block_bytes +
            static_cast<std::uint32_t>(size_rng.next_below(1'024));
        meta.upload_time = t - kSecondsPerMinute;
        photos.push_back(meta);
      }
      owners[volume].photo_count += extent.blocks;
      extents.push_back(extent);
    }
    // ~32 large blocks stream per simulated second.
    for (std::uint32_t block = 0; block < extent.blocks; ++block) {
      Request request;
      request.time = t + static_cast<std::int64_t>(block / 32);
      request.photo = extent.first + block;
      request.terminal = TerminalType::mobile;  // background transfer
      requests.push_back(request);
      ++sequential_emitted;
    }
  }

  std::stable_sort(requests.begin(), requests.end(),
                   [](const Request& a, const Request& b) {
                     return std::pair{a.time.seconds, a.photo} <
                            std::pair{b.time.seconds, b.photo};
                   });

  trace.catalog = PhotoCatalog{std::move(photos), std::move(owners)};
  trace.requests = std::move(requests);
  trace.horizon =
      SimTime{std::max(horizon_days * kSecondsPerDay,
                       trace.requests.back().time.seconds + 1)};
  return trace;
}

}  // namespace otac::scenario
