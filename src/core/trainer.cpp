#include "core/trainer.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/failpoint.h"

namespace otac {

DailyTrainer::DailyTrainer(const NextAccessInfo& oracle, OtaConfig config,
                           double m, double cost_v)
    : oracle_(&oracle), config_(config), m_(m), cost_v_(cost_v) {}

void DailyTrainer::offer(std::uint64_t index, const Request& request,
                         std::span<const float> features) {
  const std::int64_t minute = request.time.seconds / kSecondsPerMinute;
  if (minute != current_minute_) {
    current_minute_ = minute;
    minute_count_ = 0;
  }
  if (minute_count_ >= config_.sample_records_per_minute) return;
  ++minute_count_;

  TrainingSample sample;
  std::copy_n(features.begin(), FeatureExtractor::kFeatureCount,
              sample.features.begin());
  sample.index = index;
  sample.time = request.time;
  samples_.push_back(sample);
}

void DailyTrainer::ingest(std::span<const TrainingSample> samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
}

int DailyTrainer::label_of(const NextAccessInfo& oracle, std::uint64_t index,
                           double m, std::uint64_t known_until) {
  const std::uint64_t next = oracle.next[index];
  const bool reaccessed_within_m =
      next != kNoNextAccess && next < known_until &&
      static_cast<double>(next - index) <= m;
  return reaccessed_within_m ? 0 : 1;  // 1 = one-time-access (positive)
}

void DailyTrainer::restore(std::deque<TrainingSample> samples,
                           std::int64_t minute, int minute_count) {
  samples_ = std::move(samples);
  current_minute_ = minute;
  minute_count_ = minute_count;
}

std::optional<ml::DecisionTree> DailyTrainer::train(std::uint64_t now_index,
                                                    SimTime now) {
  // Fault-injection surface: a production retrain can die on anything from
  // OOM to a poisoned sample batch; the serving tier must keep the
  // last-good tree (see ClassifierSystem::observe).
  OTAC_FAILPOINT_THROW("trainer.train.fail");
  // Hung-retrain surface for the watchdog: a stall long enough that any
  // realistic barrier timeout expires, short enough to keep chaos tests
  // fast. Like train.fail it sits before any state mutation.
  if (OTAC_FAILPOINT_ACTIVE("trainer.train.hang")) {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  }
  // Drop samples older than the training window.
  const SimTime window_start =
      now - static_cast<std::int64_t>(config_.training_window_days *
                                      kSecondsPerDay);
  while (!samples_.empty() && samples_.front().time < window_start) {
    samples_.pop_front();
  }
  constexpr std::size_t kMinSamples = 50;
  if (samples_.size() < kMinSamples) return std::nullopt;

  // Project onto the deployed feature subset (§3.2.2); empty = all nine.
  const std::vector<std::size_t>& subset = config_.feature_subset;
  std::vector<std::string> names;
  if (subset.empty()) {
    names = FeatureExtractor::feature_names();
  } else {
    for (const std::size_t f : subset) {
      names.push_back(FeatureExtractor::feature_names().at(f));
    }
  }
  ml::Dataset data{std::move(names)};
  std::vector<float> projected(subset.size());
  std::size_t positives = 0;
  for (const TrainingSample& sample : samples_) {
    if (sample.index >= now_index) continue;  // future-proofing
    const int label = label_of(*oracle_, sample.index, m_, now_index);
    positives += static_cast<std::size_t>(label);
    if (subset.empty()) {
      data.add_row(sample.features, label);
    } else {
      for (std::size_t k = 0; k < subset.size(); ++k) {
        projected[k] = sample.features[subset[k]];
      }
      data.add_row(projected, label);
    }
  }
  if (data.num_rows() < kMinSamples || positives == 0 ||
      positives == data.num_rows()) {
    return std::nullopt;
  }
  data.apply_cost_matrix(cost_v_);  // §4.4.1: false positives cost v

  ml::DecisionTreeConfig tree_config;
  tree_config.max_splits = config_.tree_max_splits;
  tree_config.max_depth = config_.tree_max_depth;
  ml::DecisionTree tree{tree_config};
  tree.fit(data);
  return tree;
}

}  // namespace otac
