#include "core/features.h"

#include <algorithm>

#include "util/sim_time.h"

namespace otac {

const std::vector<std::string>& FeatureExtractor::feature_names() {
  static const std::vector<std::string> names = {
      "active_friends", "avg_owner_views", "photo_type",
      "photo_size_kb",  "photo_age_10min", "recency_10min",
      "terminal",       "recent_requests", "access_hour"};
  return names;
}

FeatureExtractor::FeatureExtractor(const PhotoCatalog& catalog)
    : last_access_(catalog.photo_count(), kNever),
      owner_stats_(catalog.owner_count()) {
  // avg_views starts at 0 / max(1, photos) == 0 for every owner; the
  // divisor and active_friends are fixed catalog properties materialized
  // once so the hot path never touches the catalog's owner table.
  for (std::size_t owner = 0; owner < catalog.owner_count(); ++owner) {
    const OwnerMeta& meta = catalog.owner(static_cast<UserId>(owner));
    owner_stats_[owner].denom =
        std::max<double>(1.0, static_cast<double>(meta.photo_count));
    owner_stats_[owner].active_friends =
        static_cast<float>(meta.active_friends);
  }
}

void FeatureExtractor::advance_window_to(std::int64_t second) noexcept {
  if (window_now_ == kNever) {
    window_now_ = second;
    return;
  }
  if (second <= window_now_) return;  // same second (or clock skew): keep
  const std::int64_t gap = second - window_now_;
  if (gap >= static_cast<std::int64_t>(kWindowSeconds)) {
    window_counts_.fill(0);
    window_total_ = 0;
  } else {
    for (std::int64_t s = 1; s <= gap; ++s) {
      auto& slot = window_counts_[static_cast<std::size_t>(
          (window_now_ + s) % static_cast<std::int64_t>(kWindowSeconds))];
      window_total_ -= slot;
      slot = 0;
    }
  }
  window_now_ = second;
}

void FeatureExtractor::extract(const Request& request, const PhotoMeta& photo,
                               std::span<float> out) const {
  const OwnerStats& owner = owner_stats_[photo.owner];
  const std::int64_t now = request.time.seconds;

  out[kActiveFriends] = owner.active_friends;
  out[kAvgOwnerViews] = owner.avg_views;
  out[kPhotoType] = static_cast<float>(type_code(photo.type));
  out[kPhotoSize] = static_cast<float>(photo.size_bytes) / 1024.0F;
  out[kPhotoAge] = static_cast<float>(
      ten_minute_buckets(std::max<std::int64_t>(0, now - photo.upload_time.seconds)));
  // Recency: since last access, or since upload when never accessed (§3.2.1).
  const std::int64_t last = last_access_[request.photo];
  const std::int64_t reference =
      last == kNever ? photo.upload_time.seconds : last;
  out[kRecency] = static_cast<float>(
      ten_minute_buckets(std::max<std::int64_t>(0, now - reference)));
  out[kTerminal] =
      request.terminal == TerminalType::mobile ? 1.0F : 0.0F;
  out[kRecentRequests] = static_cast<float>(window_total_);
  out[kAccessHour] = static_cast<float>(hour_of_day(request.time));
}

void FeatureExtractor::observe(const Request& request, const PhotoMeta& photo) {
  last_access_[request.photo] = request.time.seconds;
  // Maintain the avg-views feature incrementally: same double-precision
  // quotient the old per-extract recompute produced, done once per observe
  // instead of once per extract.
  OwnerStats& owner = owner_stats_[photo.owner];
  owner.views += 1;
  owner.avg_views =
      static_cast<float>(static_cast<double>(owner.views) / owner.denom);
  advance_window_to(request.time.seconds);
  auto& slot = window_counts_[static_cast<std::size_t>(
      request.time.seconds % static_cast<std::int64_t>(kWindowSeconds))];
  slot += 1;
  window_total_ += 1;
}

void FeatureExtractor::extract_and_observe(const Request& request,
                                           const PhotoMeta& photo,
                                           std::span<float> out) {
  OwnerStats& owner = owner_stats_[photo.owner];
  std::int64_t& last_slot = last_access_[request.photo];
  const std::int64_t now = request.time.seconds;

  // -- extract: identical expressions to extract(), reading the
  //    pre-observe values of the state this function updates below.
  out[kActiveFriends] = owner.active_friends;
  out[kAvgOwnerViews] = owner.avg_views;
  out[kPhotoType] = static_cast<float>(type_code(photo.type));
  out[kPhotoSize] = static_cast<float>(photo.size_bytes) / 1024.0F;
  out[kPhotoAge] = static_cast<float>(ten_minute_buckets(
      std::max<std::int64_t>(0, now - photo.upload_time.seconds)));
  const std::int64_t last = last_slot;
  const std::int64_t reference =
      last == kNever ? photo.upload_time.seconds : last;
  out[kRecency] = static_cast<float>(
      ten_minute_buckets(std::max<std::int64_t>(0, now - reference)));
  out[kTerminal] = request.terminal == TerminalType::mobile ? 1.0F : 0.0F;
  out[kRecentRequests] = static_cast<float>(window_total_);
  out[kAccessHour] = static_cast<float>(hour_of_day(request.time));

  // -- observe: identical updates to observe(), reusing the references
  //    already in hand instead of re-resolving the random-access slots.
  last_slot = now;
  owner.views += 1;
  owner.avg_views =
      static_cast<float>(static_cast<double>(owner.views) / owner.denom);
  advance_window_to(now);
  auto& slot =
      window_counts_[static_cast<std::size_t>(
          now % static_cast<std::int64_t>(kWindowSeconds))];
  slot += 1;
  window_total_ += 1;
}

}  // namespace otac
