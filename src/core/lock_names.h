// Central registry of every mutex in src/ — the lock-discipline twin of
// the failpoint/metric/scenario name registries. `tools/otac_analyze`
// (check `locks`) cross-checks this table against the tree both ways:
// a std::mutex / std::shared_mutex declaration missing from the table is
// a finding (every lock must be audited and classified), and a table
// entry whose declaration no longer exists is a stale-entry finding (the
// audit may not rot). Guard scopes (`std::lock_guard` / `unique_lock` /
// `scoped_lock` / `shared_lock`) on a registered mutex are then scanned
// token-by-token for the blocking operations its class forbids, and
// nested guard acquisitions must follow ascending `rank` (the pinned
// lock order).
//
// Classes — what may happen while the lock is held:
//   hot        nothing blocking at all: no file/socket I/O, no condition
//              waits or sleeps, no trainer fit. These are the locks a
//              serving request can hit; anything slow under one is a
//              tail-latency cliff multiplied by every queued waiter.
//   queue      condition waits and sleeps allowed (the mutex exists to
//              pair with a condition variable); I/O and trainer fits
//              still forbidden.
//   barrier    waits and trainer fits allowed (the retrain barrier's
//              entire purpose is to quiesce and refit under exclusion);
//              file/socket I/O still forbidden — a barrier that blocks
//              on a peer stalls every shard.
//   io_writer  socket/file I/O allowed (the mutex exists to serialize
//              writers to one descriptor); waits and trainer fits still
//              forbidden.
//
// `unit` is the translation-unit stem the declaration lives in (header
// and source share one unit); `identifier` is the variable name, member
// or local. To add a mutex: declare it, add a row here (keep ranks
// unique, ordered outermost-first), and re-run `scripts/ci.sh analyze`.
#pragma once

#include <cstdint>
#include <string_view>

namespace otac::lock {

enum class LockClass : std::uint8_t { hot, queue, barrier, io_writer };

struct LockInfo {
  std::string_view name;        ///< registry name, dotted like metric names
  std::string_view unit;        ///< TU stem, e.g. "src/net/daemon"
  std::string_view identifier;  ///< variable name of the mutex
  LockClass cls;
  int rank;  ///< pinned lock order; nested acquisition must ascend
};

inline constexpr LockInfo kKnownLocks[] = {
    // The daemon's epoch lock: readers dispatch under a shared hold, a
    // retrain barrier (or end-of-stream snapshot) takes it exclusively,
    // quiesces every shard queue, and refits — hence class barrier.
    {"net.daemon.dispatch", "src/net/daemon", "dispatch_mutex",
     LockClass::barrier, 10},
    {"net.daemon.connections", "src/net/daemon", "connections_mutex",
     LockClass::hot, 20},
    {"net.daemon.inbound_queue", "src/net/daemon", "mutex_",
     LockClass::queue, 30},
    {"net.daemon.shutdown", "src/net/daemon", "shutdown_mutex",
     LockClass::queue, 40},
    // Innermost daemon lock: serializes reply writes to one client fd
    // (reader thread and shard workers may answer concurrently).
    {"net.daemon.connection_write", "src/net/daemon", "write_mutex",
     LockClass::io_writer, 50},
    // Coordinator/worker handshake. The fit itself must NOT run under
    // this lock (class queue forbids it): the worker unlocks around
    // run_attempts(), which is exactly the invariant the analyzer pins.
    {"core.trainer_watchdog.coordination", "src/core/trainer_watchdog",
     "mutex_", LockClass::queue, 60},
    // Seqlock publisher side; readers are wait-free and never touch it.
    {"core.model_slot.writer", "src/core/model_slot", "writer_mutex_",
     LockClass::hot, 70},
    // Hit-rate memo. The estimating simulation runs between the lookup
    // hold and the insert hold, never under either.
    {"core.intelligent_cache.hit_rate", "src/core/intelligent_cache",
     "hit_rate_mutex_", LockClass::hot, 80},
    {"util.thread_pool.queue", "src/util/thread_pool", "mutex_",
     LockClass::queue, 90},
    // parallel_for's first-exception capture; held for one assignment.
    {"util.thread_pool.parallel_error", "src/util/thread_pool",
     "error_mutex", LockClass::hot, 91},
    {"util.failpoint.registry", "src/util/failpoint", "mutex_",
     LockClass::hot, 100},
};

[[nodiscard]] constexpr bool is_known_lock(std::string_view name) {
  for (const LockInfo& info : kKnownLocks) {
    if (info.name == name) return true;
  }
  return false;
}

}  // namespace otac::lock
