// Online extraction of the nine classifier features (§3.2.1), with the
// §3.2.3 discretizations: photo types mapped to 1..12, terminals to 0/1,
// age/recency in 10-minute buckets, access time as hour-of-day.
//
// The extractor is strictly causal: extract() for request i must be called
// before observe() of request i, and sees only state produced by requests
// < i. That is what makes the prediction "non-history-oriented" for
// first-seen photos — their recency collapses to (now - upload) and their
// owner statistics come from *other* photos of the same owner.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "trace/photo_catalog.h"
#include "trace/types.h"

namespace otac {

class FeatureExtractor {
 public:
  static constexpr std::size_t kFeatureCount = 9;

  enum Feature : std::size_t {
    kActiveFriends = 0,
    kAvgOwnerViews = 1,
    kPhotoType = 2,
    kPhotoSize = 3,
    kPhotoAge = 4,
    kRecency = 5,
    kTerminal = 6,
    kRecentRequests = 7,
    kAccessHour = 8,
  };

  [[nodiscard]] static const std::vector<std::string>& feature_names();

  explicit FeatureExtractor(const PhotoCatalog& catalog);

  /// Features for this request given the state *before* it. Writes exactly
  /// kFeatureCount floats.
  void extract(const Request& request, const PhotoMeta& photo,
               std::span<float> out) const;

  [[nodiscard]] std::array<float, kFeatureCount> extract(
      const Request& request, const PhotoMeta& photo) const {
    std::array<float, kFeatureCount> row{};
    extract(request, photo, row);
    return row;
  }

  /// Advance the online state by one (time-ordered) request.
  void observe(const Request& request, const PhotoMeta& photo);

  /// Requests observed in the 60 s window ending at the last observe().
  [[nodiscard]] std::uint64_t recent_request_count() const noexcept {
    return window_total_;
  }

 private:
  void advance_window_to(std::int64_t second) noexcept;

  const PhotoCatalog* catalog_;

  // Per-photo time of last access (seconds; kNever = not accessed yet).
  static constexpr std::int64_t kNever =
      std::numeric_limits<std::int64_t>::min();
  std::vector<std::int64_t> last_access_;

  // Per-owner cumulative views of their photos.
  std::vector<std::uint64_t> owner_views_;

  // Sliding 60-second request-count window (per-second ring buffer).
  static constexpr std::size_t kWindowSeconds = 60;
  std::array<std::uint32_t, kWindowSeconds> window_counts_{};
  std::int64_t window_now_ = kNever;
  std::uint64_t window_total_ = 0;
};

}  // namespace otac
