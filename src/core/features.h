// Online extraction of the nine classifier features (§3.2.1), with the
// §3.2.3 discretizations: photo types mapped to 1..12, terminals to 0/1,
// age/recency in 10-minute buckets, access time as hour-of-day.
//
// The extractor is strictly causal: extract() for request i must be called
// before observe() of request i, and sees only state produced by requests
// < i. That is what makes the prediction "non-history-oriented" for
// first-seen photos — their recency collapses to (now - upload) and their
// owner statistics come from *other* photos of the same owner.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "trace/photo_catalog.h"
#include "trace/types.h"

namespace otac {

class FeatureExtractor {
 public:
  static constexpr std::size_t kFeatureCount = 9;

  enum Feature : std::size_t {
    kActiveFriends = 0,
    kAvgOwnerViews = 1,
    kPhotoType = 2,
    kPhotoSize = 3,
    kPhotoAge = 4,
    kRecency = 5,
    kTerminal = 6,
    kRecentRequests = 7,
    kAccessHour = 8,
  };

  [[nodiscard]] static const std::vector<std::string>& feature_names();

  explicit FeatureExtractor(const PhotoCatalog& catalog);

  /// Features for this request given the state *before* it. Writes exactly
  /// kFeatureCount floats.
  void extract(const Request& request, const PhotoMeta& photo,
               std::span<float> out) const;

  [[nodiscard]] std::array<float, kFeatureCount> extract(
      const Request& request, const PhotoMeta& photo) const {
    std::array<float, kFeatureCount> row{};
    extract(request, photo, row);
    return row;
  }

  /// Advance the online state by one (time-ordered) request.
  void observe(const Request& request, const PhotoMeta& photo);

  /// Fused extract()+observe() for the batched admission path: one pass
  /// over the per-photo/per-owner state (the random loads are shared
  /// instead of issued twice), with the features computed strictly from
  /// the pre-observe state — bit-identical to extract() then observe().
  void extract_and_observe(const Request& request, const PhotoMeta& photo,
                           std::span<float> out);

  /// Hint the caches toward the per-photo/per-owner state extract() and
  /// observe() will touch for this request. Pure optimization: the batched
  /// admission path issues these for a whole micro-batch up front so the
  /// dependent loads overlap instead of serializing (the extractor state
  /// arrays are large and accessed in photo/owner order, i.e. randomly).
  void prefetch(const Request& request, const PhotoMeta& photo) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&last_access_[request.photo]);
    __builtin_prefetch(&owner_stats_[photo.owner]);
#else
    (void)request;
    (void)photo;
#endif
  }

  /// Requests observed in the 60 s window ending at the last observe().
  [[nodiscard]] std::uint64_t recent_request_count() const noexcept {
    return window_total_;
  }

 private:
  void advance_window_to(std::int64_t second) noexcept;

  // Per-photo time of last access (seconds; kNever = not accessed yet).
  static constexpr std::int64_t kNever =
      std::numeric_limits<std::int64_t>::min();
  std::vector<std::int64_t> last_access_;

  // Per-owner state, folded into ONE struct so each request touches a
  // single cache line per owner: the cumulative view count, the
  // precomputed divisor max(1, photo_count) (saves the random catalog
  // lookup observe() used to do), and the two derived feature values
  // extract() reads. avg_views is the *incrementally maintained* quotient
  // views / max(1, photo_count): observe() recomputes it once per request
  // (O(1)), so extract() is a single cached load instead of a divide +
  // catalog lookup per call. The cached float is the exact value the
  // recompute-per-extract code produced (same double arithmetic, same
  // rounding), which keeps every golden bit-identical.
  struct OwnerStats {
    std::uint64_t views = 0;
    double denom = 1.0;  // max(1.0, double(photo_count)), fixed per owner
    float active_friends = 0.0F;
    float avg_views = 0.0F;
  };
  std::vector<OwnerStats> owner_stats_;

  // Sliding 60-second request-count window (per-second ring buffer).
  static constexpr std::size_t kWindowSeconds = 60;
  std::array<std::uint32_t, kWindowSeconds> window_counts_{};
  std::int64_t window_now_ = kNever;
  std::uint64_t window_total_ = 0;
};

}  // namespace otac
