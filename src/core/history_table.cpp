#include "core/history_table.h"

#include <algorithm>
#include <cmath>

namespace otac {

HistoryTable::HistoryTable(std::size_t capacity_entries)
    : capacity_(capacity_entries) {}

void HistoryTable::record(PhotoId photo, std::uint64_t index) {
  if (capacity_ == 0) return;
  const auto it = map_.find(photo);
  if (it != map_.end()) {
    // Refresh: move to the back of the FIFO with the new position.
    fifo_.erase(it->second);
    map_.erase(it);
  }
  while (map_.size() >= capacity_) {
    map_.erase(fifo_.front().photo);
    fifo_.pop_front();
  }
  fifo_.push_back(Slot{photo, index});
  map_.emplace(photo, std::prev(fifo_.end()));
}

bool HistoryTable::rectify(PhotoId photo, std::uint64_t index, double m) {
  const auto it = map_.find(photo);
  if (it == map_.end()) return false;
  const std::uint64_t recorded = it->second->index;
  fifo_.erase(it->second);
  map_.erase(it);
  if (index >= recorded &&
      static_cast<double>(index - recorded) < m) {
    ++rectified_;
    return true;
  }
  return false;
}

std::vector<HistoryTable::Entry> HistoryTable::entries() const {
  std::vector<Entry> out;
  out.reserve(fifo_.size());
  for (const Slot& slot : fifo_) out.push_back(Entry{slot.photo, slot.index});
  return out;
}

void HistoryTable::restore(const std::vector<Entry>& oldest_first,
                           std::uint64_t rectified_count) {
  fifo_.clear();
  map_.clear();
  for (const Entry& entry : oldest_first) record(entry.photo, entry.index);
  rectified_ = rectified_count;
}

std::size_t history_table_capacity(double m, double h, double p,
                                   double factor) {
  const double entries = m * (1.0 - h) * p * factor;
  // NaN inputs (e.g. criteria computed from a degenerate trace) must not
  // reach the round/cast below — `!(x > 0)` is true for NaN.
  if (!(entries > 0.0)) return 0;
  // Clamp before the size_t cast: a runaway M would otherwise be UB.
  constexpr double kMaxEntries = 1e12;
  return static_cast<std::size_t>(
      std::max(1.0, std::round(std::min(entries, kMaxEntries))));
}

}  // namespace otac
