#include "core/history_table.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace otac {

HistoryTable::HistoryTable(std::size_t capacity_entries)
    : capacity_(capacity_entries) {}

std::uint32_t HistoryTable::find_slot(PhotoId photo,
                                      std::size_t* bucket) const noexcept {
  if (buckets_.empty()) return kNil;
  std::size_t b = home_bucket(photo);
  while (buckets_[b] != kNil) {
    if (slots_[buckets_[b]].photo == photo) {
      if (bucket != nullptr) *bucket = b;
      return buckets_[b];
    }
    b = (b + 1) & bucket_mask_;
  }
  return kNil;
}

void HistoryTable::grow() {
  // Doubling growth, capped at capacity (and the uint32 slot-index range):
  // only the first pass through a filling table allocates, amortized O(1)
  // per record; the steady state never does.
  const std::size_t old_count = slots_.size();
  const std::size_t cap = std::min<std::size_t>(capacity_, kNil - 1);
  const std::size_t target =
      std::min(cap, std::max<std::size_t>(8, old_count * 2));
  // otac-lint: allow(hotpath-alloc) — amortized warm-up growth only
  slots_.resize(target);
  for (std::size_t i = target; i-- > old_count;) {
    slots_[i].next = free_;
    free_ = static_cast<std::uint32_t>(i);
  }
  const std::size_t want_buckets = std::bit_ceil(target * 2);
  if (want_buckets > buckets_.size()) {
    buckets_.assign(want_buckets, kNil);
    bucket_mask_ = want_buckets - 1;
    hash_shift_ = 32U - static_cast<unsigned>(std::countr_zero(want_buckets));
    // Re-probe the live slots into the wider table. Insertion order does
    // not affect lookup results in this scheme, so FIFO order is fine.
    for (std::uint32_t s = head_; s != kNil; s = slots_[s].next) {
      std::size_t b = home_bucket(slots_[s].photo);
      while (buckets_[b] != kNil) b = (b + 1) & bucket_mask_;
      buckets_[b] = s;
    }
  }
}

void HistoryTable::insert_new(PhotoId photo, std::uint64_t index) noexcept {
  const std::uint32_t s = free_;
  free_ = slots_[s].next;
  Slot& slot = slots_[s];
  slot.photo = photo;
  slot.index = index;
  slot.prev = tail_;
  slot.next = kNil;
  if (tail_ != kNil) {
    slots_[tail_].next = s;
  } else {
    head_ = s;
  }
  tail_ = s;
  // The key is known absent: probe from home to the first empty bucket.
  // Load factor <= 0.5 guarantees one exists.
  std::size_t b = home_bucket(photo);
  while (buckets_[b] != kNil) b = (b + 1) & bucket_mask_;
  buckets_[b] = s;
  ++size_;
}

void HistoryTable::unlink_fifo(std::uint32_t s) noexcept {
  const Slot& slot = slots_[s];
  if (slot.prev != kNil) {
    slots_[slot.prev].next = slot.next;
  } else {
    head_ = slot.next;
  }
  if (slot.next != kNil) {
    slots_[slot.next].prev = slot.prev;
  } else {
    tail_ = slot.prev;
  }
}

void HistoryTable::move_to_newest(std::uint32_t s) noexcept {
  if (tail_ == s) return;
  unlink_fifo(s);
  slots_[s].prev = tail_;
  slots_[s].next = kNil;
  slots_[tail_].next = s;  // s was linked and is not tail_, so tail_ != kNil
  tail_ = s;
}

void HistoryTable::erase_hole(std::size_t hole) noexcept {
  // Backward-shift deletion: slide every displaced follower of the probe
  // run into the hole so lookups never need tombstones.
  std::size_t next = (hole + 1) & bucket_mask_;
  while (buckets_[next] != kNil) {
    const std::size_t home = home_bucket(slots_[buckets_[next]].photo);
    if (((next - home) & bucket_mask_) >= ((next - hole) & bucket_mask_)) {
      buckets_[hole] = buckets_[next];
      hole = next;
    }
    next = (next + 1) & bucket_mask_;
  }
  buckets_[hole] = kNil;
}

void HistoryTable::release_slot(std::uint32_t s, std::size_t bucket) noexcept {
  unlink_fifo(s);
  erase_hole(bucket);
  slots_[s].next = free_;
  free_ = s;
  --size_;
}

void HistoryTable::evict_oldest() noexcept {
  const std::uint32_t s = head_;
  std::size_t b = home_bucket(slots_[s].photo);
  while (buckets_[b] != s) b = (b + 1) & bucket_mask_;
  release_slot(s, b);
}

void HistoryTable::record(PhotoId photo, std::uint64_t index) {
  if (capacity_ == 0) return;
  std::size_t bucket = 0;
  const std::uint32_t existing = find_slot(photo, &bucket);
  if (existing != kNil) {
    // Refresh: new position, newest FIFO slot — no index churn needed.
    slots_[existing].index = index;
    move_to_newest(existing);
    return;
  }
  if (size_ >= capacity_) evict_oldest();
  if (free_ == kNil) grow();
  if (free_ == kNil) evict_oldest();  // slot-index range exhausted (4B live)
  insert_new(photo, index);
}

bool HistoryTable::rectify(PhotoId photo, std::uint64_t index, double m) {
  std::size_t bucket = 0;
  const std::uint32_t s = find_slot(photo, &bucket);
  if (s == kNil) return false;
  const std::uint64_t recorded = slots_[s].index;
  release_slot(s, bucket);
  if (index >= recorded && static_cast<double>(index - recorded) < m) {
    ++rectified_;
    return true;
  }
  return false;
}

std::vector<HistoryTable::Entry> HistoryTable::entries() const {
  std::vector<Entry> out;
  out.reserve(size_);
  for (std::uint32_t s = head_; s != kNil; s = slots_[s].next) {
    out.push_back(Entry{slots_[s].photo, slots_[s].index});
  }
  return out;
}

void HistoryTable::restore(const std::vector<Entry>& oldest_first,
                           std::uint64_t rectified_count) {
  std::fill(buckets_.begin(), buckets_.end(), kNil);
  head_ = kNil;
  tail_ = kNil;
  size_ = 0;
  free_ = kNil;
  for (std::size_t i = slots_.size(); i-- > 0;) {
    slots_[i].next = free_;
    free_ = static_cast<std::uint32_t>(i);
  }
  for (const Entry& entry : oldest_first) record(entry.photo, entry.index);
  rectified_ = rectified_count;
}

std::size_t history_table_capacity(double m, double h, double p,
                                   double factor) {
  const double entries = m * (1.0 - h) * p * factor;
  // NaN inputs (e.g. criteria computed from a degenerate trace) must not
  // reach the round/cast below — `!(x > 0)` is true for NaN.
  if (!(entries > 0.0)) return 0;
  // Clamp before the size_t cast: a runaway M would otherwise be UB.
  constexpr double kMaxEntries = 1e12;
  return static_cast<std::size_t>(
      std::max(1.0, std::round(std::min(entries, kMaxEntries))));
}

}  // namespace otac
