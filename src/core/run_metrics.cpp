#include "core/run_metrics.h"

namespace otac {

std::vector<double> duration_histogram_bounds_s() {
  return {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1,
          0.2,   0.5,   1.0,   2.0,  5.0,  10.0, 60.0};
}

std::vector<double> admission_batch_histogram_bounds() {
  return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0};
}

void populate_cache_metrics(obs::MetricsRegistry& registry,
                            const CacheStats& stats) {
  registry.set("cache.requests", stats.requests);
  registry.set("cache.hits", stats.hits);
  registry.set("cache.misses", stats.misses());
  registry.set("cache.insertions", stats.insertions);
  registry.set("cache.evictions", stats.evictions);
  registry.set("cache.rejected", stats.rejected);
  registry.set_gauge("cache.request_bytes", stats.request_bytes);
  registry.set_gauge("cache.hit_bytes", stats.hit_bytes);
  registry.set_gauge("cache.inserted_bytes", stats.inserted_bytes);
  registry.set_gauge("cache.evicted_bytes", stats.evicted_bytes);
  registry.set_gauge("cache.rejected_bytes", stats.rejected_bytes);
}

void populate_degradation_metrics(obs::MetricsRegistry& registry,
                                  const DegradationCounters& degradation) {
  registry.set("degradation.retrain_failures", degradation.retrain_failures);
  registry.set("degradation.rejected_models", degradation.rejected_models);
  registry.set("degradation.nonfinite_feature_requests",
               degradation.nonfinite_feature_requests);
  registry.set("degradation.predict_failures", degradation.predict_failures);
  registry.set("degradation.retrain_retries", degradation.retrain_retries);
  registry.set("degradation.retrain_timeouts", degradation.retrain_timeouts);
  registry.set("degradation.degraded_admits", degradation.degraded_admits);
  registry.set("degradation.shed_requests", degradation.shed_requests);
  registry.set("degradation.overload_transitions",
               degradation.overload_transitions);
  registry.set("degradation.ssd_write_retries",
               degradation.ssd_write_retries);
  registry.set("degradation.ssd_write_drops", degradation.ssd_write_drops);
}

void populate_history_metrics(obs::MetricsRegistry& registry,
                              const HistoryTable& history) {
  registry.set("history.rectified", history.rectified_count());
  registry.set_gauge("history.size", static_cast<double>(history.size()));
  registry.set_gauge("history.capacity",
                     static_cast<double>(history.capacity()));
}

std::map<std::string, double> derived_run_metrics(const CacheStats& stats,
                                                  double mean_latency_us) {
  return {
      {"file_hit_rate", stats.file_hit_rate()},
      {"byte_hit_rate", stats.byte_hit_rate()},
      {"file_write_rate", stats.file_write_rate()},
      {"byte_write_rate", stats.byte_write_rate()},
      {"mean_latency_us", mean_latency_us},
  };
}

}  // namespace otac
