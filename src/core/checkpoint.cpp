#include "core/checkpoint.h"

#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "core/run_metrics.h"
#include "util/crc32.h"
#include "util/failpoint.h"

namespace otac {

namespace {

constexpr std::uint32_t kMagic = 0x4F54434B;  // "OTCK"
constexpr std::uint32_t kVersion = 1;

enum SectionId : std::uint32_t {
  kParams = 1,
  kModel = 2,
  kHistory = 3,
  kTrainer = 4,
};
constexpr std::uint32_t kSectionCount = 4;

template <typename T>
void append_pod(std::string& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Checked sequential reader over the encoded bytes: every read is bounds
/// validated so corrupt length fields fail cleanly instead of overrunning.
struct Reader {
  const std::string& bytes;
  std::size_t pos = 0;

  [[nodiscard]] std::size_t remaining() const { return bytes.size() - pos; }

  template <typename T>
  T read() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) {
      throw std::runtime_error("checkpoint: truncated field");
    }
    T value;
    std::memcpy(&value, bytes.data() + pos, sizeof(T));
    pos += sizeof(T);
    return value;
  }

  std::string read_bytes(std::size_t size) {
    if (remaining() < size) {
      throw std::runtime_error("checkpoint: truncated payload");
    }
    std::string out = bytes.substr(pos, size);
    pos += size;
    return out;
  }
};

std::string encode_params(const ClassifierSnapshot& snap) {
  std::string out;
  append_pod(out, snap.m);
  append_pod(out, snap.h);
  append_pod(out, snap.p);
  append_pod(out, snap.cost_v);
  append_pod(out, snap.last_trained_day);
  append_pod(out, snap.last_trained_time);
  append_pod(out, static_cast<std::int32_t>(snap.trainings));
  return out;
}

std::string encode_history(const ClassifierSnapshot& snap) {
  std::string out;
  append_pod(out, snap.history_rectified);
  append_pod(out, static_cast<std::uint64_t>(snap.history.size()));
  for (const HistoryTable::Entry& entry : snap.history) {
    append_pod(out, entry.photo);
    append_pod(out, entry.index);
  }
  return out;
}

std::string encode_trainer(const ClassifierSnapshot& snap) {
  std::string out;
  append_pod(out, snap.trainer_minute);
  append_pod(out, static_cast<std::int32_t>(snap.trainer_minute_count));
  append_pod(out,
             static_cast<std::uint32_t>(FeatureExtractor::kFeatureCount));
  append_pod(out, static_cast<std::uint64_t>(snap.samples.size()));
  for (const TrainingSample& sample : snap.samples) {
    for (const float f : sample.features) append_pod(out, f);
    append_pod(out, sample.index);
    append_pod(out, sample.time.seconds);
  }
  return out;
}

void append_section(std::string& out, std::uint32_t id,
                    const std::string& payload) {
  append_pod(out, id);
  append_pod(out, static_cast<std::uint64_t>(payload.size()));
  out.append(payload);
  append_pod(out, crc32(payload));
}

void decode_params(const std::string& payload, ClassifierSnapshot& snap) {
  Reader in{payload};
  snap.m = in.read<double>();
  snap.h = in.read<double>();
  snap.p = in.read<double>();
  snap.cost_v = in.read<double>();
  snap.last_trained_day = in.read<std::int64_t>();
  snap.last_trained_time = in.read<std::int64_t>();
  snap.trainings = in.read<std::int32_t>();
  if (!std::isfinite(snap.m) || !std::isfinite(snap.h) ||
      !std::isfinite(snap.p) || !std::isfinite(snap.cost_v)) {
    throw std::runtime_error("checkpoint: non-finite criteria params");
  }
}

void decode_history(const std::string& payload, ClassifierSnapshot& snap) {
  Reader in{payload};
  snap.history_rectified = in.read<std::uint64_t>();
  const auto count = in.read<std::uint64_t>();
  constexpr std::size_t kEntryBytes =
      sizeof(PhotoId) + sizeof(std::uint64_t);
  if (count > in.remaining() / kEntryBytes) {
    throw std::runtime_error("checkpoint: history count exceeds section");
  }
  snap.history.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    HistoryTable::Entry entry;
    entry.photo = in.read<PhotoId>();
    entry.index = in.read<std::uint64_t>();
    snap.history.push_back(entry);
  }
}

void decode_trainer(const std::string& payload, ClassifierSnapshot& snap) {
  Reader in{payload};
  snap.trainer_minute = in.read<std::int64_t>();
  snap.trainer_minute_count = in.read<std::int32_t>();
  const auto feature_dim = in.read<std::uint32_t>();
  if (feature_dim != FeatureExtractor::kFeatureCount) {
    throw std::runtime_error("checkpoint: trainer feature arity mismatch");
  }
  const auto count = in.read<std::uint64_t>();
  constexpr std::size_t kSampleBytes =
      FeatureExtractor::kFeatureCount * sizeof(float) +
      sizeof(std::uint64_t) + sizeof(std::int64_t);
  if (count > in.remaining() / kSampleBytes) {
    throw std::runtime_error("checkpoint: sample count exceeds section");
  }
  snap.samples.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TrainingSample sample;
    for (float& f : sample.features) f = in.read<float>();
    sample.index = in.read<std::uint64_t>();
    sample.time = SimTime{in.read<std::int64_t>()};
    snap.samples.push_back(sample);
  }
}

}  // namespace

std::string checkpoint_origin_name(CheckpointOrigin origin) {
  switch (origin) {
    case CheckpointOrigin::none:
      return "cold-start";
    case CheckpointOrigin::current:
      return "current";
    case CheckpointOrigin::previous:
      return "previous";
  }
  throw std::invalid_argument("checkpoint_origin_name: unknown origin");
}

CheckpointManager::CheckpointManager(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) {
    throw std::invalid_argument("CheckpointManager: empty directory");
  }
}

std::string CheckpointManager::current_path() const {
  return dir_ + "/classifier.otck";
}

std::string CheckpointManager::previous_path() const {
  return dir_ + "/classifier.prev.otck";
}

std::string CheckpointManager::temp_path() const {
  return dir_ + "/classifier.tmp.otck";
}

const std::vector<std::string>& CheckpointManager::failpoint_names() {
  static const std::vector<std::string> names = {
      "checkpoint.write.open_fail", "checkpoint.write.torn",
      "checkpoint.write.bitflip",   "checkpoint.write.crash",
      "checkpoint.rotate.fail",     "checkpoint.rename.fail",
      "checkpoint.load.io",
  };
  return names;
}

std::string CheckpointManager::encode(const ClassifierSnapshot& snapshot) {
  std::string out;
  append_pod(out, kMagic);
  append_pod(out, kVersion);
  append_pod(out, kSectionCount);
  append_section(out, kParams, encode_params(snapshot));
  append_section(out, kModel, snapshot.model_blob);
  append_section(out, kHistory, encode_history(snapshot));
  append_section(out, kTrainer, encode_trainer(snapshot));
  return out;
}

ClassifierSnapshot CheckpointManager::decode(const std::string& bytes) {
  Reader in{bytes};
  if (in.read<std::uint32_t>() != kMagic) {
    throw std::runtime_error("checkpoint: bad magic");
  }
  if (in.read<std::uint32_t>() != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version");
  }
  const auto section_count = in.read<std::uint32_t>();
  if (section_count != kSectionCount) {
    throw std::runtime_error("checkpoint: wrong section count");
  }
  ClassifierSnapshot snap;
  bool seen[kSectionCount + 1] = {};
  for (std::uint32_t s = 0; s < section_count; ++s) {
    const auto id = in.read<std::uint32_t>();
    const auto size = in.read<std::uint64_t>();
    if (size > in.remaining()) {
      throw std::runtime_error("checkpoint: section size exceeds file");
    }
    const std::string payload = in.read_bytes(size);
    const auto stored_crc = in.read<std::uint32_t>();
    if (crc32(payload) != stored_crc) {
      throw std::runtime_error("checkpoint: section checksum mismatch");
    }
    if (id == 0 || id > kSectionCount || seen[id]) {
      throw std::runtime_error("checkpoint: bad section id");
    }
    seen[id] = true;
    switch (id) {
      case kParams:
        decode_params(payload, snap);
        break;
      case kModel:
        snap.model_blob = payload;
        break;
      case kHistory:
        decode_history(payload, snap);
        break;
      case kTrainer:
        decode_trainer(payload, snap);
        break;
      default:
        break;
    }
  }
  if (in.remaining() != 0) {
    throw std::runtime_error("checkpoint: trailing bytes");
  }
  return snap;
}

void CheckpointManager::save(const ClassifierSnapshot& snapshot) {
  const bool timed = save_seconds_ != nullptr;
  const auto started = timed ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};
  try {
    save_impl(snapshot);
  } catch (...) {
    if (save_failures_ != nullptr) ++*save_failures_;
    throw;
  }
  if (saves_ != nullptr) ++*saves_;
  if (timed) {
    save_seconds_->add(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - started)
                           .count());
  }
}

void CheckpointManager::save_impl(const ClassifierSnapshot& snapshot) {
  std::filesystem::create_directories(dir_);
  std::string payload = encode(snapshot);
  if (OTAC_FAILPOINT_ACTIVE("checkpoint.write.bitflip")) {
    // Silent media corruption: the write "succeeds" but a payload byte is
    // flipped; only the load-time CRC can catch this.
    payload[payload.size() / 2] ^= 0x40;
  }

  const std::string tmp = temp_path();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out || OTAC_FAILPOINT_ACTIVE("checkpoint.write.open_fail")) {
      throw std::runtime_error("checkpoint: cannot open " + tmp);
    }
    if (OTAC_FAILPOINT_ACTIVE("checkpoint.write.torn")) {
      // Crash mid-write: half the bytes land, then the process "dies".
      out.write(payload.data(),
                static_cast<std::streamsize>(payload.size() / 2));
      out.flush();
      throw fail::FailpointTriggered{"checkpoint.write.torn"};
    }
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) throw std::runtime_error("checkpoint: write failure");
    // Crash after a complete temp write but before publication: the temp
    // file is complete yet invisible to load() — still a clean recovery.
    OTAC_FAILPOINT_THROW("checkpoint.write.crash");
  }

  std::error_code ec;
  if (std::filesystem::exists(current_path())) {
    if (OTAC_FAILPOINT_ACTIVE("checkpoint.rotate.fail")) {
      throw std::runtime_error("checkpoint: rotate failed (injected)");
    }
    std::filesystem::rename(current_path(), previous_path(), ec);
    if (ec) {
      throw std::runtime_error("checkpoint: rotate failed: " + ec.message());
    }
  }
  if (OTAC_FAILPOINT_ACTIVE("checkpoint.rename.fail")) {
    throw std::runtime_error("checkpoint: rename failed (injected)");
  }
  // Atomic publication (POSIX rename within one directory).
  std::filesystem::rename(tmp, current_path(), ec);
  if (ec) {
    throw std::runtime_error("checkpoint: rename failed: " + ec.message());
  }
}

CheckpointLoad CheckpointManager::load() const {
  const bool timed = load_seconds_ != nullptr;
  const auto started = timed ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};
  const CheckpointLoad result = load_impl();
  switch (result.origin) {
    case CheckpointOrigin::current:
      if (loads_current_ != nullptr) ++*loads_current_;
      break;
    case CheckpointOrigin::previous:
      if (loads_previous_ != nullptr) ++*loads_previous_;
      break;
    case CheckpointOrigin::none:
      if (loads_cold_ != nullptr) ++*loads_cold_;
      break;
  }
  if (rejected_files_ != nullptr) {
    *rejected_files_ += static_cast<std::uint64_t>(result.rejected_files);
  }
  if (timed) {
    load_seconds_->add(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - started)
                           .count());
  }
  return result;
}

void CheckpointManager::configure_retry(const CheckpointRetryConfig& config) {
  retry_config_ = config;
  BackoffConfig backoff = config.backoff;
  backoff.max_retries = config.max_retries;
  retry_backoff_ = ExponentialBackoff{backoff, config.backoff_seed};
}

bool CheckpointManager::save_with_retry(const ClassifierSnapshot& snapshot) {
  if (read_only_) {
    // Terminal state: durability was given up; serving goes on. Counted so
    // an operator can see how many snapshots were sacrificed.
    if (read_only_skips_ != nullptr) ++*read_only_skips_;
    return false;
  }
  retry_backoff_.reset();
  bool done = false;
  while (!done) {  // bounded by retry_backoff_.exhausted() below
    try {
      save(snapshot);
      return true;
    } catch (const std::exception&) {
      if (retry_backoff_.exhausted()) {
        // Budget spent: either surface the final error or fall through to
        // the terminal read-only state below.
        if (!retry_config_.read_only_on_exhaustion) throw;
        done = true;
      } else {
        // Transient storage faults (the write.* failpoints model media
        // errors and crash points) are re-attempted after a backoff delay;
        // save_impl starts from encode() so a half-written temp file from
        // the failed attempt is simply overwritten.
        const double delay_s = retry_backoff_.next_delay_s();
        if (save_retries_ != nullptr) ++*save_retries_;
        std::this_thread::sleep_for(std::chrono::duration<double>(delay_s));
      }
    }
  }
  read_only_ = true;
  if (read_only_skips_ != nullptr) ++*read_only_skips_;
  return false;
}

CheckpointLoad CheckpointManager::load_with_retry() {
  retry_backoff_.reset();
  CheckpointLoad result = load();
  // A generation that exists but was rejected may be a *transient* read
  // error (checkpoint.load.io) rather than corruption: re-read up to the
  // budget. Cold start with nothing on disk is final — no retry can help.
  while (result.origin == CheckpointOrigin::none && result.rejected_files > 0 &&
         !retry_backoff_.exhausted()) {
    const double delay_s = retry_backoff_.next_delay_s();
    if (load_retries_ != nullptr) ++*load_retries_;
    std::this_thread::sleep_for(std::chrono::duration<double>(delay_s));
    result = load();
  }
  return result;
}

void CheckpointManager::bind_metrics(obs::MetricsRegistry& registry) {
  saves_ = registry.counter("checkpoint.saves");
  save_failures_ = registry.counter("checkpoint.save_failures");
  save_retries_ = registry.counter("checkpoint.save_retries");
  load_retries_ = registry.counter("checkpoint.load_retries");
  read_only_skips_ = registry.counter("checkpoint.read_only_skips");
  loads_current_ = registry.counter("checkpoint.loads_current");
  loads_previous_ = registry.counter("checkpoint.loads_previous");
  loads_cold_ = registry.counter("checkpoint.loads_cold");
  rejected_files_ = registry.counter("checkpoint.rejected_files");
  save_seconds_ = registry.histogram("checkpoint.save_seconds",
                                     duration_histogram_bounds_s());
  load_seconds_ = registry.histogram("checkpoint.load_seconds",
                                     duration_histogram_bounds_s());
}

CheckpointLoad CheckpointManager::load_impl() const {
  CheckpointLoad result;
  const std::pair<std::string, CheckpointOrigin> generations[] = {
      {current_path(), CheckpointOrigin::current},
      {previous_path(), CheckpointOrigin::previous},
  };
  for (const auto& [path, origin] : generations) {
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;  // generation absent — try the older one
    std::string bytes{std::istreambuf_iterator<char>{in},
                      std::istreambuf_iterator<char>{}};
    try {
      if (OTAC_FAILPOINT_ACTIVE("checkpoint.load.io")) {
        throw std::runtime_error("checkpoint: read failed (injected)");
      }
      result.snapshot = decode(bytes);
      result.origin = origin;
      return result;
    } catch (const std::exception&) {
      ++result.rejected_files;
      result.snapshot = ClassifierSnapshot{};
    }
  }
  result.origin = CheckpointOrigin::none;
  return result;
}

}  // namespace otac
