#include "core/shard_queue.h"

#include <algorithm>

namespace otac {

const char* to_string(OverloadState state) noexcept {
  switch (state) {
    case OverloadState::normal:
      return "normal";
    case OverloadState::degraded:
      return "degraded";
    case OverloadState::shedding:
      return "shedding";
  }
  return "unknown";
}

namespace {

/// Clamp a config into the documented watermark invariant
///   degraded_exit < degraded_enter <= shed_exit < shed_enter
/// so a hand-rolled config cannot wedge the machine (e.g. an exit above
/// its enter would re-trigger on the same depth forever).
OverloadConfig sanitized(OverloadConfig c) noexcept {
  constexpr double kGap = 1e-9;
  c.service_rate_per_s = std::max(c.service_rate_per_s, kGap);
  c.degraded_enter = std::max(c.degraded_enter, 1.0);
  // min(max(...)) chains instead of std::clamp: repairs are applied in
  // dependency order, so an inverted input never produces lo > hi.
  c.degraded_exit =
      std::min(std::max(c.degraded_exit, 0.0), c.degraded_enter - kGap);
  c.shed_enter = std::max(c.shed_enter, c.degraded_enter + kGap);
  c.shed_exit =
      std::min(std::max(c.shed_exit, c.degraded_enter), c.shed_enter - kGap);
  c.flash_crowd_burst = std::max(c.flash_crowd_burst, 0.0);
  return c;
}

}  // namespace

ShardQueue::ShardQueue(const OverloadConfig& config) noexcept
    : config_(sanitized(config)) {}

void ShardQueue::drain_until(double time_s) noexcept {
  if (!started_) {
    started_ = true;
    last_time_s_ = time_s;
    return;
  }
  // Trace times are non-decreasing per shard; guard anyway so a malformed
  // trace cannot grow the queue by draining a negative interval.
  const double elapsed = std::max(time_s - last_time_s_, 0.0);
  last_time_s_ = time_s;
  depth_ = std::max(depth_ - elapsed * config_.service_rate_per_s, 0.0);
}

OverloadState ShardQueue::step(OverloadState from) const noexcept {
  switch (from) {
    case OverloadState::normal:
      if (depth_ >= config_.degraded_enter) return OverloadState::degraded;
      break;
    case OverloadState::degraded:
      if (depth_ >= config_.shed_enter) return OverloadState::shedding;
      if (depth_ <= config_.degraded_exit) return OverloadState::normal;
      break;
    case OverloadState::shedding:
      if (depth_ <= config_.shed_exit) return OverloadState::degraded;
      break;
  }
  return from;
}

void ShardQueue::settle() noexcept {
  // Converges in <= 2 steps (the chain has three states and hysteresis
  // gaps prevent cycles), so this is not an unbounded retry loop.
  OverloadState next = step(state_);
  while (next != state_) {
    state_ = next;
    ++transitions_;
    next = step(state_);
  }
}

OverloadState ShardQueue::on_request(double time_s) noexcept {
  drain_until(time_s);
  depth_ += 1.0;  // tentative enqueue: the arrival itself is load
  settle();
  if (state_ == OverloadState::shedding) {
    depth_ -= 1.0;  // shed work never occupies the queue
    ++shed_;
    return OverloadState::shedding;
  }
  return state_;
}

void ShardQueue::inject(double work_units) noexcept {
  depth_ += std::max(work_units, 0.0);
  settle();
}

}  // namespace otac
