// The shared model slot of the sharded serving layer: worker threads load
// a snapshot once per retrain epoch, the trainer publishes a new compiled
// tree at retrain barriers.
//
// Design: a two-generation seqlock over the CompiledTree word codec
// (ml/compiled_tree.h). Publish k writes generation k & 1, so a publish
// never overwrites the generation the previous publish exposed — a reader
// that overlaps one publish still decodes the other, intact generation and
// only retries when a *second* publish lands mid-read. Readers are
// wait-free in practice: publishes happen once per retrain barrier, reads
// once per shard per epoch.
//
// Why not std::atomic<std::shared_ptr<...>> (the seed design)? libstdc++
// (12) implements it with an internal spinlock that load() releases with
// memory_order_relaxed, so the reader's plain read of the pointer field has
// no release/acquire chain to the next writer's plain write — a data race
// by the letter of the memory model, and ThreadSanitizer reports it as
// such. Here every shared access is a std::atomic operation, so the slot is
// provably clean under TSan (scripts/check_concurrency.sh is the gate, and
// tests/core/sharded_stress_test.cpp hammers concurrent load/store).
//
// Memory-ordering argument (the seqlock correctness proof, DESIGN.md §12):
//   writer (under writer_mutex_):  begin_.store(next, relaxed);
//                                  atomic_thread_fence(release);
//                                  relaxed word stores to words_[next & 1];
//                                  end_.store(next, release);
//   reader:                        s = end_.load(acquire);        // (1)
//                                  relaxed word loads of words_[s & 1];
//                                  atomic_thread_fence(acquire);  // (2)
//                                  valid iff begin_.load(relaxed) <= s + 1
// (1) synchronizes with publish s's end_ release store, so generation
// s & 1 as written by publish s is fully visible. The only writes that can
// tear it belong to publish s + 2 (same generation); that publisher stores
// begin_ = s + 2 *before* its release fence, which precedes its word
// stores. If any word load observed such a store, the release-fence /
// acquire-fence pair (2) forces the begin_ load to observe >= s + 2 and
// the reader retries. begin_ == s + 1 is harmless: publish s + 1 writes
// the other generation.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <stdexcept>

#include "ml/compiled_tree.h"

namespace otac {

class ModelSlot {
 public:
  /// Generation capacity in tree nodes — 16x the largest tree any ablation
  /// fits (the paper's budget is 30 splits = 61 nodes).
  static constexpr std::size_t kMaxNodes = 1024;
  static constexpr std::size_t kWords =
      ml::CompiledTree::kHeaderWords +
      ml::CompiledTree::kWordsPerNode * kMaxNodes;

  [[nodiscard]] static bool fits(const ml::CompiledTree& tree) noexcept {
    return tree.node_count() <= kMaxNodes;
  }

  /// Publish a new model. Throws std::length_error when the tree exceeds
  /// the slot capacity (callers gate with fits() and count a rejected
  /// model instead). Safe against concurrent load() and store().
  void store(const ml::CompiledTree& tree) {
    if (!fits(tree) || tree.node_count() == 0) {
      throw std::length_error("ModelSlot: tree does not fit the slot");
    }
    std::array<std::uint32_t, kWords> staged;
    const std::size_t count = tree.word_count();
    tree.encode_words(std::span{staged.data(), count});

    const std::lock_guard<std::mutex> lock(writer_mutex_);
    const std::uint64_t next = end_.load(std::memory_order_relaxed) + 1;
    begin_.store(next, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    auto& gen = words_[next & 1];
    for (std::size_t w = 0; w < count; ++w) {
      gen[w].store(staged[w], std::memory_order_relaxed);
    }
    end_.store(next, std::memory_order_release);
  }

  /// Snapshot the current model into `out` (reusing its capacity).
  /// Returns false when nothing has been published yet. Wait-free unless a
  /// publish to the generation being read lands mid-copy, which retries.
  [[nodiscard]] bool load(ml::CompiledTree& out) const {
    std::array<std::uint32_t, kWords> staged;
    // Seqlock read loop: bounded by publisher progress (a retry happens
    // only when a publish landed mid-copy), not by an attempt budget.
    // otac-lint: allow(bounded-retry)
    for (;;) {
      const std::uint64_t s = end_.load(std::memory_order_acquire);
      if (s == 0) return false;
      const auto& gen = words_[s & 1];
      const std::uint32_t nodes = gen[0].load(std::memory_order_relaxed);
      const std::size_t count =
          ml::CompiledTree::kHeaderWords +
          ml::CompiledTree::kWordsPerNode *
              std::min<std::size_t>(nodes, kMaxNodes);
      for (std::size_t w = 0; w < count; ++w) {
        staged[w] = gen[w].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (begin_.load(std::memory_order_relaxed) <= s + 1) {
        return ml::CompiledTree::decode_words(std::span{staged.data(), count},
                                              out);
      }
    }
  }

  /// Number of completed publishes (diagnostics/tests).
  [[nodiscard]] std::uint64_t publish_count() const noexcept {
    return end_.load(std::memory_order_acquire);
  }

 private:
  std::mutex writer_mutex_;  // serializes publishers only
  std::atomic<std::uint64_t> begin_{0};  // last publish announced
  std::atomic<std::uint64_t> end_{0};    // last publish completed
  std::array<std::array<std::atomic<std::uint32_t>, kWords>, 2> words_{};
};

}  // namespace otac
