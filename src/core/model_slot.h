// The shared model slot of the sharded serving layer: worker threads load
// a snapshot, the trainer swaps in a new tree at retrain barriers.
//
// Why not std::atomic<std::shared_ptr<...>>? libstdc++ (12) implements it
// with an internal spinlock that load() releases with memory_order_relaxed,
// so the reader's plain read of the pointer field has no release/acquire
// chain to the next writer's plain write — a data race by the letter of the
// memory model, and ThreadSanitizer reports it as such. The slot below has
// the identical read-mostly semantics (wait-free in practice: the critical
// section is two pointer copies, and the sharded replay takes it once per
// shard per epoch, not per request) and is provably clean under TSan, which
// scripts/check_concurrency.sh makes a build gate.
#pragma once

#include <memory>
#include <mutex>

#include "ml/decision_tree.h"

namespace otac {

class ModelSlot {
 public:
  /// Snapshot the current model (nullptr until the first publish). The
  /// returned shared_ptr keeps the tree alive even if a store() replaces
  /// it mid-use.
  [[nodiscard]] std::shared_ptr<const ml::DecisionTree> load() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return model_;
  }

  /// Publish a new model; readers holding the old snapshot are unaffected.
  void store(std::shared_ptr<const ml::DecisionTree> next) {
    const std::lock_guard<std::mutex> lock(mutex_);
    model_ = std::move(next);
  }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const ml::DecisionTree> model_;
};

}  // namespace otac
