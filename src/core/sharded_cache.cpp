#include "core/sharded_cache.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <thread>

#include "core/history_table.h"
#include "core/model_slot.h"
#include "core/run_metrics.h"
#include "core/serving_core.h"
#include "core/shard_queue.h"
#include "core/trainer.h"
#include "core/trainer_watchdog.h"
#include "storage/latency_model.h"
#include "util/failpoint.h"
#include "util/sim_time.h"
#include "util/thread_pool.h"

namespace otac {

std::size_t shard_of_photo(PhotoId photo, std::size_t shards) noexcept {
  // SplitMix64 finalizer: photo ids are often sequential, so a plain
  // `photo % shards` would stripe hot neighborhoods; the mixer spreads them.
  std::uint64_t x = static_cast<std::uint64_t>(photo) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % shards);
}

std::vector<std::uint64_t> retrain_trigger_indices(const Trace& trace,
                                                   const OtaConfig& ota) {
  // Mirror of the schedule in ClassifierSystem::observe — including the
  // subtlety that last_trained_time advances on every *due* event, whether
  // or not that train produced a model. The schedule reads only request
  // times, which is what lets the sharded replay precompute its barriers.
  std::vector<std::uint64_t> triggers;
  constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::min();
  std::int64_t last_trained_day = kNever;
  std::int64_t last_trained_time = kNever;
  const bool interval_mode = ota.retrain_interval_hours > 0.0;
  const auto interval =
      static_cast<std::int64_t>(ota.retrain_interval_hours * kSecondsPerHour);
  for (std::uint64_t i = 0; i < trace.requests.size(); ++i) {
    const SimTime time = trace.requests[i].time;
    bool due = false;
    if (interval_mode) {
      due = last_trained_time == kNever ||
            time.seconds - last_trained_time >= interval;
    } else {
      const std::int64_t day = day_index(time);
      due = hour_of_day(time) >= ota.retrain_hour && day > last_trained_day;
      if (due) last_trained_day = day;
    }
    if (due) {
      // Cold: trigger precompute runs once per run, before replay starts.
      // otac-lint: allow(hotpath-alloc)
      triggers.push_back(i);
      last_trained_time = time.seconds;
    }
  }
  return triggers;
}

namespace {

// Everything one shard touches on the request path. Shards interact only
// through the shared model slot, so workers never contend on this state —
// including the metrics registry: each shard accumulates into its own and
// the registries meet only at barriers (merged in shard order).
struct ShardState {
  std::unique_ptr<CachePolicy> policy;
  std::unique_ptr<ServingCore> core;      // proposal only
  std::unique_ptr<DailyTrainer> sampler;  // proposal only: budget + buffer
  std::unique_ptr<ShardQueue> queue;      // proposal + overload only
  std::unique_ptr<obs::MetricsRegistry> registry;
  obs::LatencyRecorder recorder;
  obs::FixedHistogram* batch_sizes = nullptr;  // proposal only
  ml::CompiledTree compiled;  // per-shard model snapshot (proposal only)
  CacheStats stats;
  std::size_t pos = 0;  // cursor into this shard's request-index list
};

// Copy each shard's cumulative totals into its registry (idempotent
// assignment) — called at every barrier and once at the end of the run.
void populate_shard_registries(std::vector<ShardState>& states,
                               bool is_proposal) {
  for (ShardState& state : states) {
    populate_cache_metrics(*state.registry, state.stats);
    if (is_proposal) {
      populate_history_metrics(*state.registry, state.core->history);
      populate_degradation_metrics(*state.registry, state.core->degradation);
    }
  }
}

// Merged view at a deterministic point: trainer-side registry first, then
// shard registries folded in shard order.
obs::MetricsSnapshot merged_snapshot(const obs::MetricsRegistry& global,
                                     const std::vector<ShardState>& states) {
  obs::MetricsSnapshot merged = global.snapshot();
  for (const ShardState& state : states) {
    merged.merge(state.registry->snapshot());
  }
  return merged;
}

}  // namespace

ShardedCache::ShardedCache(const IntelligentCache& system)
    : system_(&system), trace_(&system.trace()) {}

RunResult ShardedCache::run(const RunConfig& config) const {
  if (config.capacity_bytes == 0) {
    throw std::invalid_argument("ShardedCache: zero capacity");
  }
  const std::size_t shards = config.shards;
  if (shards == 0) {
    throw std::invalid_argument("ShardedCache: zero shards");
  }
  const std::uint64_t shard_capacity = config.capacity_bytes / shards;
  if (shard_capacity == 0) {
    throw std::invalid_argument(
        "ShardedCache: capacity splits to zero bytes per shard");
  }

  RunResult result;
  const Trace& trace = *trace_;
  const NextAccessInfo& oracle = system_->oracle();
  const bool is_proposal = config.mode == AdmissionMode::proposal;

  // Criteria / cost are global properties of the trace and total capacity —
  // shards share one M and one cost matrix, exactly as the unsharded system.
  const bool needs_criteria =
      is_proposal || config.mode == AdmissionMode::ideal;
  if (needs_criteria) {
    const double h = config.hit_rate_estimate
                         ? *config.hit_rate_estimate
                         : system_->estimate_hit_rate(config.capacity_bytes);
    result.criteria = compute_criteria(trace, oracle, config.capacity_bytes, h,
                                       config.ota.criteria_iterations);
    if (config.policy == PolicyKind::lirs) {
      result.criteria.m =
          lirs_criteria(result.criteria.m, config.lirs_lir_fraction);
    }
    result.cost_v = system_->cost_v_for(config.capacity_bytes, config.ota);
  }

  // Keyspace partition, materialized as per-shard index lists so each
  // worker walks a dense array instead of filtering the whole trace.
  std::vector<std::vector<std::uint64_t>> shard_requests(shards);
  for (std::uint64_t i = 0; i < trace.requests.size(); ++i) {
    shard_requests[shard_of_photo(trace.requests[i].photo, shards)]
        // Cold: one-time shard bucketing before the replay loop.
        // otac-lint: allow(hotpath-alloc)
        .push_back(i);
  }

  ServingConfig serving;
  std::size_t history_slice = 0;
  OtaConfig sampler_ota = config.ota;
  std::size_t model_arity = 0;
  if (is_proposal) {
    serving.feature_subset = config.ota.feature_subset;
    serving.m = result.criteria.m;
    serving.admit_before_first_model = config.ota.admit_before_first_model;
    const std::size_t history_total = history_table_capacity(
        result.criteria.m, result.criteria.h, result.criteria.p,
        config.ota.history_table_factor);
    history_slice = history_total / shards;
    if (history_slice == 0 && history_total > 0) history_slice = 1;
    // Each shard applies its 1/N slice of the per-minute sampling budget,
    // so the aggregate sampling rate matches the paper's §3.1.1 knob (and
    // shards=1 keeps the exact unsharded budget).
    const int rate = config.ota.sample_records_per_minute;
    sampler_ota.sample_records_per_minute =
        rate == 0 ? 0 : std::max(1, rate / static_cast<int>(shards));
    model_arity = config.ota.feature_subset.empty()
                      ? FeatureExtractor::kFeatureCount
                      : config.ota.feature_subset.size();
  }

  const LatencyModel latency{config.latency};
  const bool classified_path =
      is_proposal || config.mode == AdmissionMode::ideal;
  std::vector<ShardState> states(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    ShardState& state = states[s];
    state.policy = make_policy(config.policy, shard_capacity,
                               config.lirs_lir_fraction);
    // Cold: per-shard construction, once per run.
    // otac-lint: allow(hotpath-alloc)
    state.registry = std::make_unique<obs::MetricsRegistry>();
    state.recorder = obs::LatencyRecorder{
        state.registry->histogram(kLatencyHistogramName,
                                  LatencyModel::histogram_bounds_us()),
        latency.request_latency_us(true, classified_path),
        latency.request_latency_us(false, classified_path)};
    if (is_proposal) {
      // otac-lint: allow(hotpath-alloc)
      state.core = std::make_unique<ServingCore>(trace.catalog, oracle,
                                                 serving, history_slice);
      state.core->bind_metrics(*state.registry);
      // otac-lint: allow(hotpath-alloc)
      state.sampler = std::make_unique<DailyTrainer>(
          oracle, sampler_ota, result.criteria.m, result.cost_v);
      state.batch_sizes = state.registry->histogram(
          kAdmissionBatchHistogramName, admission_batch_histogram_bounds());
      if (config.resilience.overload.enabled) {
        // otac-lint: allow(hotpath-alloc)
        state.queue = std::make_unique<ShardQueue>(config.resilience.overload);
      }
    }
  }
  for (std::size_t s = 0; s < shards; ++s) {
    CacheStats* stats = &states[s].stats;  // states never reallocates now
    states[s].policy->set_eviction_callback(
        [stats](PhotoId key, std::uint32_t size) {
          stats->note_eviction(key, size);
        });
  }

  // The one shared mutable object: workers load it once per epoch, the
  // trainer swaps it at barriers. DegradationCounters for the trainer side
  // live outside the shards (merged into the result at the end), and so
  // does the trainer's registry — barriers are the only writers, so it
  // needs no synchronization either.
  ModelSlot model;
  DailyTrainer trainer{oracle, config.ota, result.criteria.m, result.cost_v};
  // Retrain supervision (core/trainer_watchdog.h). With the default
  // WatchdogConfig (inline, zero retries) this is exactly the historical
  // try/catch-once barrier, so default-config replays stay bit-identical.
  TrainerWatchdog watchdog{trainer, config.resilience.watchdog};
  DegradationCounters trainer_degradation;
  obs::MetricsRegistry global_registry;
  obs::FixedHistogram* fit_seconds = global_registry.histogram(
      kFitHistogramName, duration_histogram_bounds_s());
  obs::MetricsRegistry::Counter fits = global_registry.counter("trainer.fits");
  obs::MetricsRegistry::Counter fit_skipped =
      global_registry.counter("trainer.fit_skipped");
  obs::MetricsRegistry::Counter models_published =
      global_registry.counter("trainer.models_published");
  obs::MetricsRegistry::Counter samples_drained =
      global_registry.counter("trainer.samples_drained");
  obs::MetricsRegistry::Counter compiled_tree_swaps =
      global_registry.counter("trainer.compiled_tree_swaps");
  std::vector<std::uint64_t> triggers;
  if (is_proposal) triggers = retrain_trigger_indices(trace, config.ota);

  const std::size_t hardware = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  const std::size_t threads =
      std::min(shards, config.threads != 0 ? config.threads : hardware);
  ThreadPool pool{threads};

  const std::uint64_t total_requests = trace.requests.size();
  const double criteria_m = result.criteria.m;
  std::uint64_t epoch_begin = 0;
  std::size_t next_trigger = 0;
  while (epoch_begin < total_requests) {
    const bool has_trigger = is_proposal && next_trigger < triggers.size();
    const std::uint64_t epoch_end =
        has_trigger ? triggers[next_trigger] + 1 : total_requests;

    pool.parallel_for(shards, [&](std::size_t s) {
      ShardState& state = states[s];
      const std::vector<std::uint64_t>& mine = shard_requests[s];

      if (!is_proposal) {
        for (; state.pos < mine.size() && mine[state.pos] < epoch_end;
             ++state.pos) {
          const std::uint64_t i = mine[state.pos];
          const Request& request = trace.requests[i];
          const PhotoMeta& photo = trace.catalog.photo(request.photo);
          state.policy->set_next_access_hint(oracle.next[i]);
          const bool hit =
              state.policy->access(request.photo, photo.size_bytes);
          state.stats.requests += 1;
          state.stats.request_bytes += photo.size_bytes;
          state.recorder.record(hit);
          if (hit) {
            state.stats.hits += 1;
            state.stats.hit_bytes += photo.size_bytes;
            continue;
          }
          bool admitted = false;
          switch (config.mode) {
            case AdmissionMode::original:
              admitted = true;
              break;
            case AdmissionMode::bypass:
              admitted = false;
              break;
            case AdmissionMode::ideal: {
              const std::uint64_t distance = oracle.reaccess_distance(i);
              admitted = distance != kNoNextAccess &&
                         static_cast<double>(distance) <= criteria_m;
              break;
            }
            case AdmissionMode::proposal:
              break;  // handled by the batched loop below
          }
          if (admitted) {
            if (state.policy->insert(request.photo, photo.size_bytes)) {
              state.stats.insertions += 1;
              state.stats.inserted_bytes += photo.size_bytes;
            }
          } else {
            state.stats.rejected += 1;
            state.stats.rejected_bytes += photo.size_bytes;
          }
        }
        return;
      }

      // Proposal mode: micro-batched serving. One seqlock load per epoch —
      // the model is constant between retrain barriers, which matches the
      // unsharded visibility rule (a retrain inside observe(i) serves
      // requests from i+1 on).
      const ml::CompiledTree* tree =
          model.load(state.compiled) ? &state.compiled : nullptr;

      if (state.queue != nullptr) {
        // Overload-resilience loop (core/shard_queue.h): scalar serving
        // gated by the shard's degradation state machine. Only taken when
        // OverloadConfig::enabled — the default batched path below stays
        // byte-identical to the pre-resilience code. Per-request failpoint
        // evaluations (registry mutex + hash lookup) are acceptable here
        // by the same reasoning: the cost is confined to this opt-in path.
        const OverloadConfig& overload = config.resilience.overload;
        const int ssd_budget = config.resilience.ssd_write_max_retries;
        DegradationCounters& degradation = state.core->degradation;
        const auto insert_with_ssd_retry = [&](const Request& request,
                                               const PhotoMeta& photo) {
          // Transient SSD write faults retry in place (a re-evaluation of
          // the failpoint models the re-issued write); after the budget
          // the object is simply not cached — admission rejection, never
          // an error on the serving path.
          int attempt = 0;
          while (OTAC_FAILPOINT_ACTIVE("storage.ssd.write_error")) {
            if (attempt >= ssd_budget) {
              ++degradation.ssd_write_drops;
              state.stats.rejected += 1;
              state.stats.rejected_bytes += photo.size_bytes;
              return;
            }
            ++attempt;
            ++degradation.ssd_write_retries;
          }
          if (state.policy->insert(request.photo, photo.size_bytes)) {
            state.stats.insertions += 1;
            state.stats.inserted_bytes += photo.size_bytes;
          }
        };

        for (; state.pos < mine.size() && mine[state.pos] < epoch_end;
             ++state.pos) {
          const std::uint64_t i = mine[state.pos];
          const Request& request = trace.requests[i];
          const PhotoMeta& photo = trace.catalog.photo(request.photo);
          if (OTAC_FAILPOINT_ACTIVE("chaos.flash_crowd")) {
            state.queue->inject(overload.flash_crowd_burst);
          }
          const OverloadState pressure = state.queue->on_request(
              static_cast<double>(request.time.seconds));
          state.stats.requests += 1;
          state.stats.request_bytes += photo.size_bytes;
          if (pressure == OverloadState::shedding) {
            // Dropped before any serving work — no cache lookup, no
            // feature extraction, no sample. Counted as a rejection so
            // the stats stay coherent (hits + insertions + rejected ==
            // requests); the shard-level shed total is snapshotted from
            // the queue after the epoch.
            state.stats.rejected += 1;
            state.stats.rejected_bytes += photo.size_bytes;
            state.recorder.record(false);
            continue;
          }
          if (pressure == OverloadState::degraded) {
            // The paper's Original policy as pressure relief: skip the
            // whole ML half (extraction, sampling, classification) and
            // admit every miss cheap.
            state.policy->set_next_access_hint(oracle.next[i]);
            const bool hit =
                state.policy->access(request.photo, photo.size_bytes);
            state.recorder.record(hit);
            if (hit) {
              state.stats.hits += 1;
              state.stats.hit_bytes += photo.size_bytes;
              continue;
            }
            ++degradation.degraded_admits;
            insert_with_ssd_retry(request, photo);
            continue;
          }
          // Normal: the full ML admission path as a batch of one —
          // identical semantics to the batched loop below, at scalar
          // granularity so the state machine can redirect the very next
          // request.
          state.core->begin_batch();
          state.sampler->offer(i, request, state.core->stage(request, photo));
          state.core->classify_staged(tree);
          state.batch_sizes->add(1.0);
          state.policy->set_next_access_hint(oracle.next[i]);
          const bool hit =
              state.policy->access(request.photo, photo.size_bytes);
          state.recorder.record(hit);
          if (hit) {
            state.stats.hits += 1;
            state.stats.hit_bytes += photo.size_bytes;
            continue;
          }
          if (state.core->admit_staged(0, i, request, photo)) {
            insert_with_ssd_retry(request, photo);
          } else {
            state.stats.rejected += 1;
            state.stats.rejected_bytes += photo.size_bytes;
          }
        }
        // Epoch-end snapshot of the queue's own counters into the shard's
        // DegradationCounters (assignment — cumulative, idempotent).
        degradation.shed_requests = state.queue->shed();
        degradation.overload_transitions = state.queue->transitions();
        return;
      }

      constexpr std::size_t kBatch = ServingCore::kAdmissionBatchCapacity;
      while (state.pos < mine.size() && mine[state.pos] < epoch_end) {
        // Gather up to kBatch requests, never crossing the epoch barrier —
        // batch boundaries therefore depend only on the trace and the
        // retrain schedule, keeping the replay deterministic and the batch
        // size invisible to results.
        std::size_t batch = 0;
        std::array<const PhotoMeta*, kBatch> photos;
        while (batch < kBatch && state.pos + batch < mine.size() &&
               mine[state.pos + batch] < epoch_end) {
          const std::uint64_t i = mine[state.pos + batch];
          const Request& request = trace.requests[i];
          photos[batch] = &trace.catalog.photo(request.photo);
          // Warm the extractor's per-photo/per-owner state for the whole
          // batch so its random-access loads overlap.
          state.core->prefetch(request, *photos[batch]);
          ++batch;
        }

        // Pass 1 — model-independent per-request work, in trace order:
        // feature extraction into the arena, the training-sample offer,
        // and the extractor advance (all inside/around stage()).
        state.core->begin_batch();
        for (std::size_t b = 0; b < batch; ++b) {
          const std::uint64_t i = mine[state.pos + b];
          const Request& request = trace.requests[i];
          state.sampler->offer(i, request,
                               state.core->stage(request, *photos[b]));
        }

        // Pass 2 — one branch-free batched tree walk for every staged row.
        // Predictions depend only on extractor state, never on the cache
        // or history, so classifying ahead of the sequential replay below
        // is bit-identical to predicting at each miss.
        state.core->classify_staged(tree);
        state.batch_sizes->add(static_cast<double>(batch));

        // Pass 3 — the strictly sequential cache replay, consuming the
        // precomputed verdicts on misses.
        for (std::size_t b = 0; b < batch; ++b) {
          const std::uint64_t i = mine[state.pos + b];
          const Request& request = trace.requests[i];
          const PhotoMeta& photo = *photos[b];
          state.policy->set_next_access_hint(oracle.next[i]);
          const bool hit =
              state.policy->access(request.photo, photo.size_bytes);
          state.stats.requests += 1;
          state.stats.request_bytes += photo.size_bytes;
          state.recorder.record(hit);
          if (hit) {
            state.stats.hits += 1;
            state.stats.hit_bytes += photo.size_bytes;
            continue;
          }
          if (state.core->admit_staged(b, i, request, photo)) {
            if (state.policy->insert(request.photo, photo.size_bytes)) {
              state.stats.insertions += 1;
              state.stats.inserted_bytes += photo.size_bytes;
            }
          } else {
            state.stats.rejected += 1;
            state.stats.rejected_bytes += photo.size_bytes;
          }
        }
        state.pos += batch;
      }
    });

    if (has_trigger) {
      const std::uint64_t trigger = triggers[next_trigger];
      ++next_trigger;
      // Drain the shard buffers into the global trainer, merged in trace
      // order so the training set (and its window pruning) is independent
      // of both shard count and scheduling.
      std::vector<TrainingSample> drained;
      for (ShardState& state : states) {
        const std::deque<TrainingSample>& buffer = state.sampler->samples();
        drained.insert(drained.end(), buffer.begin(), buffer.end());
        state.sampler->restore({}, state.sampler->current_minute(),
                               state.sampler->minute_count());
      }
      std::sort(drained.begin(), drained.end(),
                [](const TrainingSample& a, const TrainingSample& b) {
                  return a.index < b.index;
                });
      *samples_drained += drained.size();
      const auto fit_started = std::chrono::steady_clock::now();
      const RetrainOutcome outcome = watchdog.retrain(
          std::move(drained), trigger, trace.requests[trigger].time);
      trainer_degradation.retrain_retries +=
          static_cast<std::uint64_t>(outcome.retries);
      switch (outcome.status) {
        case RetrainOutcome::Status::trained:
          ++*fits;
          if (validate_serving_model(*outcome.tree, model_arity)) {
            const ml::CompiledTree compiled =
                ml::CompiledTree::compile(*outcome.tree);
            if (ModelSlot::fits(compiled)) {
              model.store(compiled);
              ++result.trainings;
              ++*models_published;
              ++*compiled_tree_swaps;
            } else {
              // A tree too large for the slot is as unservable as one that
              // fails validation.
              ++trainer_degradation.rejected_models;
            }
          } else {
            ++trainer_degradation.rejected_models;
          }
          break;
        case RetrainOutcome::Status::skipped:
          ++*fit_skipped;
          break;
        case RetrainOutcome::Status::failed:
          ++trainer_degradation.retrain_failures;
          break;
        case RetrainOutcome::Status::timed_out:
        case RetrainOutcome::Status::busy:
          // Shards keep serving the last-good generation; the watchdog has
          // buffered this barrier's samples for a later idle barrier.
          ++trainer_degradation.retrain_timeouts;
          break;
      }
      fit_seconds->add(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - fit_started)
                           .count());

      // Barrier snapshot: all shards are quiescent here (the parallel_for
      // above is a full join), so this merged view is a pure function of
      // trace position — the time-series the run report exports.
      populate_shard_registries(states, is_proposal);
      populate_degradation_metrics(global_registry, trainer_degradation);
      global_registry.set("trainer.trainings",
                          static_cast<std::uint64_t>(result.trainings));
      // Cold: retrain barrier (9 per replay), not the per-request loop.
      // otac-lint: allow(hotpath-alloc)
      result.obs.timeline.push_back(
          obs::BarrierSample{trigger, trace.requests[trigger].time.seconds,
                             merged_snapshot(global_registry, states)});
    }
    epoch_begin = epoch_end;
  }

  // Merge in shard order — deterministic, and for shards=1 the copy of
  // shard 0 keeps the eviction hash equal to the raw sequence hash.
  result.stats = states[0].stats;
  for (std::size_t s = 1; s < shards; ++s) {
    result.stats.merge(states[s].stats);
  }
  if (is_proposal) {
    result.degradation = trainer_degradation;
    std::map<std::int64_t, DayClassifierMetrics> daily;
    for (const ShardState& state : states) {
      result.history_capacity += state.core->history.capacity();
      result.degradation.merge(state.core->degradation);
      for (const DayClassifierMetrics& metrics : state.core->daily) {
        auto [it, inserted] = daily.try_emplace(metrics.day, metrics);
        if (!inserted) {
          it->second.raw.merge(metrics.raw);
          it->second.corrected.merge(metrics.corrected);
        }
      }
    }
    // Cold: end-of-run report assembly.
    // otac-lint: allow(hotpath-alloc)
    result.daily.reserve(daily.size());
    for (const auto& [day, metrics] : daily) {
      // otac-lint: allow(hotpath-alloc)
      result.daily.push_back(metrics);
    }
  }

  const double hit_rate = result.stats.file_hit_rate();
  result.mean_latency_us =
      config.mode == AdmissionMode::original ||
              config.mode == AdmissionMode::bypass
          ? latency.mean_access_time_original_us(hit_rate)
          : latency.mean_access_time_proposed_us(hit_rate);

  // Final report: end-of-run per-shard snapshots, the merged view, and an
  // end-of-trace timeline sample when the last barrier wasn't already the
  // final request (non-proposal modes have no barriers at all).
  populate_shard_registries(states, is_proposal);
  if (is_proposal) {
    populate_degradation_metrics(global_registry, trainer_degradation);
    global_registry.set("trainer.trainings",
                        static_cast<std::uint64_t>(result.trainings));
  }
  result.obs.mode = admission_mode_name(config.mode);
  result.obs.policy = policy_name(config.policy);
  result.obs.shards = shards;
  result.obs.threads = threads;
  // Cold: end-of-run report assembly.
  // otac-lint: allow(hotpath-alloc)
  result.obs.per_shard.reserve(shards);
  for (const ShardState& state : states) {
    // otac-lint: allow(hotpath-alloc)
    result.obs.per_shard.push_back(state.registry->snapshot());
  }
  result.obs.merged = merged_snapshot(global_registry, states);
  if (!trace.requests.empty()) {
    const std::uint64_t last = trace.requests.size() - 1;
    if (result.obs.timeline.empty() ||
        result.obs.timeline.back().request_index != last) {
      // otac-lint: allow(hotpath-alloc)
      result.obs.timeline.push_back(obs::BarrierSample{
          last, trace.requests.back().time.seconds, result.obs.merged});
    }
  }
  result.obs.derived =
      derived_run_metrics(result.stats, result.mean_latency_us);
  return result;
}

}  // namespace otac
