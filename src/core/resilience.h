// Configuration for the overload-resilience layer: bounded shard queues
// with a Normal → Degraded → Shedding state machine, the retrain watchdog,
// and the storage retry paths. Gathered in one header so RunConfig
// (core/intelligent_cache.h) picks the whole layer up with one include.
//
// Every default below disables the layer: OverloadConfig::enabled = false
// keeps the batched admission path byte-identical to the pre-resilience
// code, and WatchdogConfig::timeout_s = 0 / max_retries = 0 makes the
// barrier-side trainer call exactly the historical try/catch. The
// determinism goldens (shards=1 bit-identity, report goldens) therefore
// never see this layer unless a test turns it on.
#pragma once

#include <cstdint>

#include "util/backoff.h"

namespace otac {

/// Overload protection for one shard's admission stream. Queue depth is a
/// *fluid model*: requests arrive at their trace sim-times and drain at
/// `service_rate_per_s`, so the depth — and every state transition — is a
/// pure function of (trace, config), preserving run determinism while
/// still exercising real backpressure behavior.
struct OverloadConfig {
  bool enabled = false;

  /// Work units drained per simulated second (one accepted request = one
  /// unit). Must be > 0 when enabled.
  double service_rate_per_s = 2000.0;

  // Hysteresis watermarks on queue depth (work units). Invariant:
  //   degraded_exit < degraded_enter <= shed_exit < shed_enter
  // Entering Degraded switches admissions to the paper's Original
  // (admit-all-cheap) path; entering Shedding drops requests outright.
  double degraded_enter = 64.0;
  double degraded_exit = 32.0;
  double shed_enter = 128.0;
  double shed_exit = 96.0;

  /// Extra work units injected when the `chaos.flash_crowd` failpoint
  /// fires on a request (0 = site compiled to a no-op check only).
  double flash_crowd_burst = 0.0;
};

/// Retrain supervision at barriers. timeout_s == 0 selects the *inline*
/// mode: train on the coordinator thread with only the retry loop added
/// (and with max_retries == 0 that is byte-identical to the historical
/// try/catch). timeout_s > 0 selects the threaded watchdog: the trainer
/// runs on a worker thread, the barrier waits at most timeout_s, and a
/// hung retrain is abandoned — shards proceed on the last-good model and
/// the trainer result, if it ever lands, is discarded.
struct WatchdogConfig {
  double timeout_s = 0.0;
  int max_retries = 0;     ///< re-runs of a *throwing* retrain per barrier
  BackoffConfig backoff{}; ///< delays between retries (jitter seeded below)
  std::uint64_t backoff_seed = 0;
};

/// Retry/backoff for checkpoint save/load. After the save budget is
/// exhausted the manager enters a terminal *read-only* state: further
/// save() calls are counted and skipped (serving continues, durability is
/// sacrificed) instead of throwing on every barrier.
struct CheckpointRetryConfig {
  int max_retries = 0;
  BackoffConfig backoff{};
  std::uint64_t backoff_seed = 0;
  bool read_only_on_exhaustion = true;
};

/// The whole layer, embedded in RunConfig as `resilience`.
struct ResilienceConfig {
  OverloadConfig overload;
  WatchdogConfig watchdog;
  CheckpointRetryConfig checkpoint;
  /// Bounded retries for a transiently failing SSD insert write
  /// (`storage.ssd.write_error` failpoint); only evaluated on the
  /// overload-enabled path.
  int ssd_write_max_retries = 2;
};

}  // namespace otac
