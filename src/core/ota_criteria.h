// One-time-access criteria (§4.3): the reaccess-distance threshold
//
//        M = C / [ S̄ · (1 - h) · (1 - p) ]                        (Eq. 2)
//
// where C = cache capacity, S̄ = mean photo size, h = hit rate, p = the
// one-time-access fraction. p depends on M (a larger threshold makes fewer
// accesses "one-time"), so the paper iterates from p = 0; three rounds
// suffice empirically. A photo access is one-time w.r.t. M when its next
// reaccess lies more than M requests ahead (or never happens).
#pragma once

#include <cstdint>

#include "trace/next_access.h"
#include "trace/trace.h"

namespace otac {

struct CriteriaResult {
  double m = 0.0;          // reaccess-distance threshold (requests)
  double h = 0.0;          // hit-rate estimate used
  double p = 0.0;          // converged one-time fraction
  double mean_size = 0.0;  // S-bar (bytes)

  friend bool operator==(const CriteriaResult&,
                         const CriteriaResult&) = default;
};

/// Fraction of accesses whose reaccess distance exceeds `m`.
[[nodiscard]] double one_time_fraction(const NextAccessInfo& oracle,
                                       std::uint64_t num_requests, double m);

/// Fixpoint computation of M. `hit_rate_estimate` comes from a plain
/// simulation of the target capacity (the paper estimates h the same way).
[[nodiscard]] CriteriaResult compute_criteria(const Trace& trace,
                                              const NextAccessInfo& oracle,
                                              std::uint64_t capacity_bytes,
                                              double hit_rate_estimate,
                                              int iterations = 3);

/// LIRS variant (§5.2): M_LIRS = M * R_s with R_s = C_s / C the LIR-stack
/// share of the cache.
[[nodiscard]] double lirs_criteria(double m, double lir_fraction);

}  // namespace otac
