#include "core/trainer_watchdog.h"

#include <chrono>
#include <exception>
#include <utility>

namespace otac {

TrainerWatchdog::TrainerWatchdog(DailyTrainer& trainer, WatchdogConfig config,
                                 std::uint64_t seed)
    : trainer_(&trainer), config_(config), backoff_([&] {
        BackoffConfig b = config.backoff;
        b.max_retries = config.max_retries;
        return b;
      }(), seed ^ config.backoff_seed) {
  if (config_.timeout_s > 0.0) {
    worker_ = std::thread([this] { worker_loop(); });
  }
}

TrainerWatchdog::~TrainerWatchdog() {
  if (!worker_.joinable()) return;
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
    // Whatever is in flight will be discarded by the id check on finish.
    abandoned_before_ = next_job_id_;
  }
  cv_job_.notify_all();
  worker_.join();
}

TrainerWatchdog::Attempt TrainerWatchdog::run_attempts(
    std::uint64_t trigger_index, SimTime now, bool sleep_delays) {
  Attempt attempt;
  backoff_.reset();
  bool done = false;
  while (!done) {  // bounded by backoff_.exhausted() below
    try {
      if (auto tree = trainer_->train(trigger_index, now)) {
        attempt.status = RetrainOutcome::Status::trained;
        attempt.tree = std::move(tree);
      } else {
        attempt.status = RetrainOutcome::Status::skipped;
      }
      done = true;
    } catch (const std::exception&) {
      if (backoff_.exhausted()) {
        attempt.status = RetrainOutcome::Status::failed;
        done = true;
      } else {
        // Retry after the scheduled delay. train() throws before mutating
        // trainer state (its failpoint sits at entry; a real fit failure
        // happens after window pruning, which is idempotent for the same
        // `now`), so re-running is safe.
        const double delay_s = backoff_.next_delay_s();
        ++attempt.retries;
        if (sleep_delays) {
          std::this_thread::sleep_for(std::chrono::duration<double>(delay_s));
        }
      }
    }
  }
  return attempt;
}

RetrainOutcome TrainerWatchdog::retrain(std::vector<TrainingSample> drained,
                                        std::uint64_t trigger_index,
                                        SimTime now) {
  RetrainOutcome outcome;

  if (!worker_.joinable()) {
    // Inline mode: the coordinator owns the trainer outright.
    trainer_->ingest(drained);
    Attempt attempt = run_attempts(trigger_index, now, /*sleep_delays=*/false);
    outcome.status = attempt.status;
    outcome.tree = std::move(attempt.tree);
    outcome.retries = attempt.retries;
    return outcome;
  }

  std::unique_lock lock(mutex_);
  if (busy_) {
    // A previous barrier's job still owns the trainer: buffer this
    // barrier's samples (trace order is preserved — barriers hand over
    // index-ascending slices in order) and proceed on the last-good model.
    pending_.insert(pending_.end(), drained.begin(), drained.end());
    outcome.status = RetrainOutcome::Status::busy;
    return outcome;
  }

  // Worker idle: the coordinator may touch the trainer. Flush everything
  // buffered while it was busy, then this barrier's batch.
  if (!pending_.empty()) {
    trainer_->ingest(pending_);
    pending_.clear();
  }
  trainer_->ingest(drained);

  const std::uint64_t id = next_job_id_++;
  job_ = Job{trigger_index, now, id};
  busy_ = true;
  lock.unlock();
  cv_job_.notify_one();
  lock.lock();

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config_.timeout_s));
  if (cv_done_.wait_until(lock, deadline,
                          [&] { return done_job_id_ == id; })) {
    outcome.status = done_attempt_.status;
    outcome.tree = std::move(done_attempt_.tree);
    outcome.retries = done_attempt_.retries;
    return outcome;
  }

  // Timed out: abandon the job. The worker's finish path sees the id below
  // abandoned_before_ and discards the result without publishing.
  abandoned_before_ = id + 1;
  outcome.status = RetrainOutcome::Status::timed_out;
  return outcome;
}

std::size_t TrainerWatchdog::buffered_samples() const {
  const std::lock_guard lock(mutex_);
  return pending_.size();
}

void TrainerWatchdog::worker_loop() {
  std::unique_lock lock(mutex_);
  bool running = true;
  while (running) {  // exits when stop_ observed below
    cv_job_.wait(lock, [&] { return stop_ || job_.has_value(); });
    if (stop_) {
      // Shutdown: drop any not-yet-started job instead of running it — the
      // destructor already marked everything in flight as abandoned.
      job_.reset();
      busy_ = false;
      running = false;
    } else if (job_.has_value()) {
      const Job job = *job_;
      job_.reset();
      lock.unlock();
      Attempt attempt = run_attempts(job.trigger_index, job.now,
                                     /*sleep_delays=*/true);
      lock.lock();
      busy_ = false;
      if (job.id >= abandoned_before_) {
        done_job_id_ = job.id;
        done_attempt_ = std::move(attempt);
        cv_done_.notify_all();
      }
      // Abandoned: result dropped on the floor — a stale tree publishing
      // mid-epoch would be nondeterministic, and the barrier already
      // accounted the timeout.
    }
  }
}

}  // namespace otac
