#include "core/intelligent_cache.h"

#include <stdexcept>

#include "cachesim/simulator.h"
#include "core/run_metrics.h"
#include "trace/trace_stats.h"

namespace otac {

std::string admission_mode_name(AdmissionMode mode) {
  switch (mode) {
    case AdmissionMode::original:
      return "Original";
    case AdmissionMode::proposal:
      return "Proposal";
    case AdmissionMode::ideal:
      return "Ideal";
    case AdmissionMode::bypass:
      return "Bypass";
  }
  throw std::invalid_argument("admission_mode_name: unknown mode");
}

IntelligentCache::IntelligentCache(const Trace& trace)
    : trace_(&trace), oracle_(compute_next_access(trace)) {
  const TraceStats stats = compute_trace_stats(trace);
  total_object_bytes_ = stats.total_object_bytes;
}

double IntelligentCache::estimate_hit_rate(
    std::uint64_t capacity_bytes) const {
  {
    const std::lock_guard lock(hit_rate_mutex_);
    const auto cached = hit_rate_cache_.find(capacity_bytes);
    if (cached != hit_rate_cache_.end()) return cached->second;
  }
  const auto policy = make_policy(PolicyKind::lru, capacity_bytes);
  AlwaysAdmit admission;
  Simulator sim{*trace_};
  const double h = sim.run(*policy, admission).file_hit_rate();
  const std::lock_guard lock(hit_rate_mutex_);
  hit_rate_cache_.emplace(capacity_bytes, h);
  return h;
}

double IntelligentCache::cost_v_for(std::uint64_t capacity_bytes,
                                    const OtaConfig& ota) const {
  if (total_object_bytes_ <= 0.0) return ota.cost_v_small;
  const double fraction =
      static_cast<double>(capacity_bytes) / total_object_bytes_;
  return fraction <= ota.cost_switch_capacity_fraction ? ota.cost_v_small
                                                       : ota.cost_v_large;
}

RunResult IntelligentCache::run(const RunConfig& config) const {
  if (config.capacity_bytes == 0) {
    throw std::invalid_argument("IntelligentCache: zero capacity");
  }
  RunResult result;
  const auto policy = make_policy(config.policy, config.capacity_bytes,
                                  config.lirs_lir_fraction);
  Simulator sim{*trace_};
  sim.set_oracle(oracle_);

  // Observability: one registry for the whole (single-stream) run. The
  // latency recorder resolves its two bucket indices up front, so the
  // per-request cost in the simulator loop is a single bucket increment.
  const LatencyModel latency{config.latency};
  const bool classified_path = config.mode == AdmissionMode::proposal ||
                               config.mode == AdmissionMode::ideal;
  obs::MetricsRegistry registry;
  obs::LatencyRecorder recorder{
      registry.histogram(kLatencyHistogramName,
                         LatencyModel::histogram_bounds_us()),
      latency.request_latency_us(true, classified_path),
      latency.request_latency_us(false, classified_path)};
  sim.set_latency_recorder(&recorder);

  const bool needs_criteria = config.mode == AdmissionMode::proposal ||
                              config.mode == AdmissionMode::ideal;
  if (needs_criteria) {
    const double h = config.hit_rate_estimate
                         ? *config.hit_rate_estimate
                         : estimate_hit_rate(config.capacity_bytes);
    result.criteria =
        compute_criteria(*trace_, oracle_, config.capacity_bytes, h,
                         config.ota.criteria_iterations);
    if (config.policy == PolicyKind::lirs) {
      // §5.2: the LIRS stack only shields its LIR share, so the criteria
      // threshold shrinks by R_s.
      result.criteria.m =
          lirs_criteria(result.criteria.m, config.lirs_lir_fraction);
    }
    result.cost_v = cost_v_for(config.capacity_bytes, config.ota);
  }

  switch (config.mode) {
    case AdmissionMode::original: {
      AlwaysAdmit admission;
      result.stats = sim.run(*policy, admission);
      break;
    }
    case AdmissionMode::bypass: {
      NeverAdmit admission;
      result.stats = sim.run(*policy, admission);
      break;
    }
    case AdmissionMode::ideal: {
      OracleAdmission admission{oracle_, result.criteria.m};
      result.stats = sim.run(*policy, admission);
      break;
    }
    case AdmissionMode::proposal: {
      ClassifierSystemConfig cs;
      cs.ota = config.ota;
      cs.m = result.criteria.m;
      cs.h = result.criteria.h;
      cs.p = result.criteria.p;
      cs.cost_v = result.cost_v;
      ClassifierSystem admission{*trace_, oracle_, cs};
      admission.bind_metrics(registry);
      result.history_capacity = admission.history().capacity();
      result.stats = sim.run(*policy, admission);
      result.daily = admission.daily_metrics();
      result.trainings = admission.trainings();
      result.degradation = admission.degradation();
      registry.set("trainer.trainings",
                   static_cast<std::uint64_t>(result.trainings));
      populate_history_metrics(registry, admission.history());
      populate_degradation_metrics(registry, result.degradation);
      break;
    }
  }

  const double hit_rate = result.stats.file_hit_rate();
  result.mean_latency_us =
      config.mode == AdmissionMode::original ||
              config.mode == AdmissionMode::bypass
          ? latency.mean_access_time_original_us(hit_rate)
          : latency.mean_access_time_proposed_us(hit_rate);

  // Final (end-of-run) snapshot: the unsharded path is one shard by
  // definition, so per_shard mirrors merged and the timeline has a single
  // end-of-trace sample (ShardedCache adds one per retrain barrier).
  populate_cache_metrics(registry, result.stats);
  result.obs.mode = admission_mode_name(config.mode);
  result.obs.policy = policy_name(config.policy);
  result.obs.shards = 1;
  result.obs.threads = 1;
  result.obs.merged = registry.snapshot();
  result.obs.per_shard.push_back(result.obs.merged);
  if (!trace_->requests.empty()) {
    result.obs.timeline.push_back(
        obs::BarrierSample{trace_->requests.size() - 1,
                           trace_->requests.back().time.seconds,
                           result.obs.merged});
  }
  result.obs.derived =
      derived_run_metrics(result.stats, result.mean_latency_us);
  return result;
}

}  // namespace otac
