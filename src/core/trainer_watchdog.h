// Retrain supervision for the sharded replay's barriers: bounded retry
// with exponential backoff for *throwing* retrains, and (in threaded
// mode) a timeout for *hung* retrains so a stuck trainer can never stall
// the shards — they proceed on the last-good CompiledTree generation and
// the trainer catches up at a later barrier.
//
// Two modes, selected by WatchdogConfig::timeout_s:
//
//   Inline (timeout_s == 0, the default): train() runs on the coordinator
//   thread inside the barrier, with only the retry loop wrapped around
//   it. With max_retries == 0 this is exactly the historical
//   try/catch-once behavior, which is what keeps default-config runs
//   bit-identical to the pre-watchdog code. Backoff delays are
//   *accounted, not slept* — the barrier is already a quiescent point and
//   an immediate retry is deterministic.
//
//   Threaded (timeout_s > 0): a dedicated worker thread runs the retrain
//   (including its retry loop, with real backoff sleeps) while the
//   barrier waits at most timeout_s. On timeout the job is *abandoned*:
//   the barrier returns timed_out, shards continue on the last-good
//   model, and whenever the hung train eventually finishes its result is
//   discarded — a stale tree must never publish mid-epoch, that would be
//   nondeterministic. While the worker is busy, subsequent barriers
//   return `busy` immediately and their drained samples are buffered
//   here, to be ingested the next time the trainer is safely idle.
//
// Threading contract: DailyTrainer is not thread-safe, so the watchdog
// only touches it (ingest or train) when the worker is provably idle;
// busy barriers never reach it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/resilience.h"
#include "core/trainer.h"
#include "ml/decision_tree.h"
#include "util/sim_time.h"

namespace otac {

struct RetrainOutcome {
  enum class Status {
    trained,    ///< train() produced a tree (in `tree`)
    skipped,    ///< train() returned nullopt (too few samples / one class)
    failed,     ///< every attempt threw — counts one retrain_failures
    timed_out,  ///< threaded: job abandoned after timeout_s
    busy,       ///< threaded: worker still on a previous barrier's job
  };

  Status status = Status::skipped;
  std::optional<ml::DecisionTree> tree;  ///< set iff status == trained
  int retries = 0;  ///< extra attempts consumed (adds to retrain_retries)

  [[nodiscard]] bool stalled() const noexcept {
    return status == Status::timed_out || status == Status::busy;
  }
};

class TrainerWatchdog {
 public:
  /// The trainer must outlive the watchdog. `seed` feeds backoff jitter
  /// (combined with config.backoff_seed) so retry schedules are
  /// reproducible per run.
  TrainerWatchdog(DailyTrainer& trainer, WatchdogConfig config,
                  std::uint64_t seed = 0);
  ~TrainerWatchdog();

  TrainerWatchdog(const TrainerWatchdog&) = delete;
  TrainerWatchdog& operator=(const TrainerWatchdog&) = delete;

  /// Barrier-side entry point: hand over this barrier's drained samples
  /// (trace-index-ascending) and run — or submit — the retrain for
  /// (trigger_index, now). Always returns promptly in threaded mode
  /// (bounded by timeout_s); never blocks on a previous hung job.
  [[nodiscard]] RetrainOutcome retrain(std::vector<TrainingSample> drained,
                                       std::uint64_t trigger_index,
                                       SimTime now);

  /// Samples buffered across busy barriers, not yet ingested.
  [[nodiscard]] std::size_t buffered_samples() const;

  [[nodiscard]] bool threaded() const noexcept { return worker_.joinable(); }

 private:
  struct Attempt {
    RetrainOutcome::Status status = RetrainOutcome::Status::skipped;
    std::optional<ml::DecisionTree> tree;
    int retries = 0;
  };

  /// The bounded retry loop around DailyTrainer::train (both modes).
  /// `sleep_delays` selects real backoff sleeps (worker thread) vs pure
  /// accounting (inline at a barrier).
  Attempt run_attempts(std::uint64_t trigger_index, SimTime now,
                       bool sleep_delays);

  void worker_loop();

  DailyTrainer* trainer_;
  WatchdogConfig config_;
  ExponentialBackoff backoff_;

  // Threaded mode state (all guarded by mutex_).
  mutable std::mutex mutex_;
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  struct Job {
    std::uint64_t trigger_index = 0;
    SimTime now{};
    std::uint64_t id = 0;
  };
  std::optional<Job> job_;           ///< submitted, not yet taken
  bool busy_ = false;                ///< worker owns the trainer right now
  bool stop_ = false;
  std::uint64_t next_job_id_ = 1;
  std::uint64_t abandoned_before_ = 0;  ///< jobs with id < this: discard
  std::uint64_t done_job_id_ = 0;
  Attempt done_attempt_;
  std::vector<TrainingSample> pending_;  ///< buffered across busy barriers
  std::thread worker_;
};

}  // namespace otac
