// Bridge between the serving stack's native accounting structs
// (CacheStats, DegradationCounters, HistoryTable) and the obs registry:
// canonical metric names, the shared histogram grids, and the
// snapshot-time population helpers every run loop calls at its barriers.
//
// Population *assigns* cumulative totals (MetricsRegistry::set) rather
// than incrementing, so calling it at every retrain barrier — as the
// sharded replay does to build its time-series — stays idempotent, and
// nothing is double-counted on the hot path: the only per-request
// instrumentation in the system is the latency recorder and the
// ServingCore admission counters.
#pragma once

#include <map>
#include <string>

#include "cachesim/cache_stats.h"
#include "core/history_table.h"
#include "core/serving_core.h"
#include "obs/metrics.h"

namespace otac {

/// Per-request simulated latency histogram (microseconds).
inline constexpr std::string_view kLatencyHistogramName =
    "latency.request_us";
/// Wall-clock CART fit durations (seconds). Timing metrics carry the
/// "_seconds" suffix by convention: they are the one non-deterministic
/// family in a report, and tooling (the golden test, diff scripts) filters
/// on that suffix.
inline constexpr std::string_view kFitHistogramName = "trainer.fit_seconds";
/// Per-shard admission micro-batch sizes (requests per batched classify;
/// deterministic — batch boundaries are a pure function of the trace and
/// the retrain schedule).
inline constexpr std::string_view kAdmissionBatchHistogramName =
    "serving.admission_batch_size";

/// Wall-clock duration grid (seconds): 1 ms .. 60 s in a 1-2-5 ladder.
[[nodiscard]] std::vector<double> duration_histogram_bounds_s();

/// Power-of-two grid for admission batch sizes: 1, 2, 4, ... up to
/// ServingCore::kAdmissionBatchCapacity.
[[nodiscard]] std::vector<double> admission_batch_histogram_bounds();

/// Cumulative cache counters/gauges from a CacheStats (cache.* namespace).
void populate_cache_metrics(obs::MetricsRegistry& registry,
                            const CacheStats& stats);

/// Serving-path degradation counters (degradation.* namespace).
void populate_degradation_metrics(obs::MetricsRegistry& registry,
                                  const DegradationCounters& degradation);

/// History-table occupancy and rectification telemetry (history.*).
void populate_history_metrics(obs::MetricsRegistry& registry,
                              const HistoryTable& history);

/// Non-additive summary figures for RunReport::derived.
[[nodiscard]] std::map<std::string, double> derived_run_metrics(
    const CacheStats& stats, double mean_latency_us);

}  // namespace otac
