// Per-stream serving half of the classification system (Fig. 4), split out
// of ClassifierSystem so it can be instantiated once per shard by the
// sharded serving layer (core/sharded_cache.h) while the unsharded
// ClassifierSystem keeps wrapping exactly the same code — that shared body
// is what makes the shards=1 path bit-identical to the single-threaded
// system by construction.
//
// A ServingCore owns everything that is private to one request stream:
// online feature extractor, history table, per-day confusion metrics, and
// the serving-path degradation counters. It does NOT own the model — the
// caller passes the tree per admit() call, which is how the sharded layer
// shares one read-mostly CART across shards (model-slot swap on retrain)
// without the core knowing.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/config.h"
#include "core/features.h"
#include "core/history_table.h"
#include "ml/compiled_tree.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "obs/metrics.h"
#include "trace/next_access.h"

namespace otac {

struct DayClassifierMetrics {
  std::int64_t day = 0;
  ml::ConfusionMatrix raw;        // tree verdicts
  ml::ConfusionMatrix corrected;  // after history-table rectification

  friend bool operator==(const DayClassifierMetrics&,
                         const DayClassifierMetrics&) = default;
};

/// Every time the serving path degrades instead of failing it increments a
/// counter here (Flashield's rule: an ML cache component must fail toward
/// conservative admission, i.e. the paper's Original admit-all behavior).
struct DegradationCounters {
  /// Retrain threw (terminally — retries exhausted or disabled) — the
  /// last-good tree kept serving. Counted once per failed barrier.
  std::uint64_t retrain_failures = 0;
  /// A trained or checkpointed model failed validation — rejected; the
  /// previous tree (or admit-all when none) keeps serving.
  std::uint64_t rejected_models = 0;
  /// Requests whose features came out non-finite — admitted via fallback.
  std::uint64_t nonfinite_feature_requests = 0;
  /// predict() threw (arity mismatch etc.) — admitted via fallback.
  std::uint64_t predict_failures = 0;

  // --- overload-resilience layer (core/resilience.h) -------------------
  /// Watchdog re-ran a thrown retrain within one barrier's retry budget.
  std::uint64_t retrain_retries = 0;
  /// A barrier gave up waiting on a hung retrain (or found the trainer
  /// still busy from a previous barrier) and proceeded on the last-good
  /// model. Counted once per affected barrier.
  std::uint64_t retrain_timeouts = 0;
  /// Admissions decided by the Original (admit-all-cheap) fallback while a
  /// shard was in the Degraded overload state.
  std::uint64_t degraded_admits = 0;
  /// Requests dropped (counted as rejected) while a shard was Shedding.
  std::uint64_t shed_requests = 0;
  /// Overload state-machine transitions (any direction, any shard).
  std::uint64_t overload_transitions = 0;
  /// SSD insert writes that failed transiently and were retried.
  std::uint64_t ssd_write_retries = 0;
  /// SSD insert writes abandoned after the retry budget — the object was
  /// not cached (counted as rejected), which only costs a future miss.
  std::uint64_t ssd_write_drops = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return retrain_failures + rejected_models + nonfinite_feature_requests +
           predict_failures + retrain_retries + retrain_timeouts +
           degraded_admits + shed_requests + overload_transitions +
           ssd_write_retries + ssd_write_drops;
  }

  void merge(const DegradationCounters& other) noexcept {
    retrain_failures += other.retrain_failures;
    rejected_models += other.rejected_models;
    nonfinite_feature_requests += other.nonfinite_feature_requests;
    predict_failures += other.predict_failures;
    retrain_retries += other.retrain_retries;
    retrain_timeouts += other.retrain_timeouts;
    degraded_admits += other.degraded_admits;
    shed_requests += other.shed_requests;
    overload_transitions += other.overload_transitions;
    ssd_write_retries += other.ssd_write_retries;
    ssd_write_drops += other.ssd_write_drops;
  }

  friend bool operator==(const DegradationCounters&,
                         const DegradationCounters&) = default;
};

/// A model is servable iff it is fitted, matches the deployed feature
/// arity, and yields a finite probability on a probe row. Shared by
/// ClassifierSystem (daily retrain / checkpoint restore) and the sharded
/// trainer (before an atomic model swap).
[[nodiscard]] bool validate_serving_model(const ml::DecisionTree& tree,
                                          std::size_t expected_arity);

/// Parameters the serving path needs from the full system configuration.
struct ServingConfig {
  std::vector<std::size_t> feature_subset;  // empty = all nine features
  double m = 0.0;                           // criteria threshold (§4.3)
  bool collect_daily_metrics = true;
  bool admit_before_first_model = true;
};

class ServingCore {
 public:
  /// Upper bound on requests staged per admission micro-batch.
  static constexpr std::size_t kAdmissionBatchCapacity =
      ml::CompiledTree::kMaxBatch;

  ServingCore(const PhotoCatalog& catalog, const NextAccessInfo& oracle,
              ServingConfig config, std::size_t history_capacity);

  /// Steps 4-7 of §4.2 against the given model (nullptr = no model yet):
  /// extract features, predict one-time vs not, rectify via the history
  /// table, record daily metrics. Degrades to plain admission on
  /// non-finite features or a throwing predict.
  bool admit(const ml::DecisionTree* model, std::uint64_t index,
             const Request& request, const PhotoMeta& photo);
  /// Same serving semantics over a flattened tree (the unsharded system
  /// and the stress suite serve from a CompiledTree snapshot).
  bool admit(const ml::CompiledTree* model, std::uint64_t index,
             const Request& request, const PhotoMeta& photo);

  // --- batched admission (the sharded proposal loop) -------------------
  //
  // Per micro-batch (<= kAdmissionBatchCapacity requests, never crossing a
  // retrain barrier):
  //   begin_batch();
  //   for each request: stage(request, photo);   // extract + observe
  //   classify_staged(model);                    // one batched tree walk
  //   for each request, in order: replay the cache; on a miss,
  //     admit_staged(slot, index, request, photo);
  //
  // stage() runs the model-independent half for *every* request — feature
  // extraction into a reusable arena (zero per-request allocation) and the
  // observe() advance — and classify_staged() predicts every staged row in
  // one branch-free predict_proba_batch call. Predictions depend only on
  // extractor state (never on cache/history/policy state), so classifying
  // ahead of the strictly sequential replay is safe: admit_staged() then
  // consumes the precomputed probability only for rows that actually miss,
  // and its observable behavior (decisions, degradation counters, daily
  // metrics, history mutations) is identical to calling scalar admit() at
  // the miss point. That equivalence is what preserves shards=1
  // bit-identity with batching enabled.

  /// Reset the staging arena for a new micro-batch.
  void begin_batch() noexcept { staged_ = 0; }

  /// Extract this request's features into the arena (fused with the
  /// observe() advance), recording subset projection errors. Returns the
  /// full feature row (the training sample the caller may buffer); valid
  /// until the next begin_batch().
  std::span<const float> stage(const Request& request, const PhotoMeta& photo);

  /// Classify every staged row against `model` (nullptr = no model yet)
  /// with one predict_proba_batch call.
  void classify_staged(const ml::CompiledTree* model);

  /// Admission decision for staged row `slot` (stage() call order),
  /// consuming the probability computed by classify_staged(). Only called
  /// for rows that miss; behavior matches scalar admit() exactly.
  bool admit_staged(std::size_t slot, std::uint64_t index,
                    const Request& request, const PhotoMeta& photo);

  [[nodiscard]] std::size_t staged_count() const noexcept { return staged_; }

  /// Batch warm-up: hint the extractor's per-photo/per-owner state and the
  /// history table's hash bucket for this request.
  void prefetch(const Request& request, const PhotoMeta& photo) const noexcept {
    extractor.prefetch(request, photo);
    history.prefetch(request.photo);
  }

  /// Features of this request given the state *before* it (the training
  /// sample the caller may buffer). Valid until the next extract()/admit().
  [[nodiscard]] std::span<const float> extract(const Request& request,
                                               const PhotoMeta& photo);

  /// Advance the online feature state by one (time-ordered) request.
  void observe(const Request& request, const PhotoMeta& photo);

  /// Resolve admission-decision counters against `registry` (serving.*
  /// namespace). Handles are resolved once here; per-request cost is a
  /// plain increment, compiled out entirely under OTAC_OBS_OFF. The
  /// registry must outlive this core; rebinding replaces the handles.
  void bind_metrics(obs::MetricsRegistry& registry);

  [[nodiscard]] const ServingConfig& config() const noexcept {
    return config_;
  }

  // Components, exposed for snapshotting (ClassifierSystem) and merging
  // (ShardedCache): each instance is single-stream, so outside access is
  // only valid when no admit/extract/observe is in flight.
  FeatureExtractor extractor;
  HistoryTable history;
  std::vector<DayClassifierMetrics> daily;
  DegradationCounters degradation;

 private:
  template <class Model>
  bool admit_impl(const Model* model, std::uint64_t index,
                  const Request& request, const PhotoMeta& photo);

  /// Shared tail of every admission decision: predict counters, history
  /// rectify/record, daily confusion metrics. Returns the admit verdict.
  bool finish_admit(bool predicted_one_time, std::uint64_t index,
                    const Request& request);

  void record_metric(std::int64_t day, int actual, int raw_prediction,
                     int corrected_prediction);

  // Pre-resolved obs handles; all null until bind_metrics(). One struct so
  // the hot path tests a single pointer.
  struct AdmitMetrics {
    obs::MetricsRegistry::Counter no_model_admits = nullptr;
    obs::MetricsRegistry::Counter predict_one_time = nullptr;
    obs::MetricsRegistry::Counter predict_reuse = nullptr;
    obs::MetricsRegistry::Counter rectified = nullptr;
    obs::MetricsRegistry::Counter history_recorded = nullptr;
  };
  AdmitMetrics metrics_;
  bool metrics_bound_ = false;

  ServingConfig config_;
  const NextAccessInfo* oracle_;
  std::array<float, FeatureExtractor::kFeatureCount> scratch_{};
  std::size_t arity_;             // deployed arity (subset size, or all 9)
  std::vector<float> projected_;  // scratch for the deployed feature subset

  // Staging arena for the batched path — sized once at construction, so
  // the per-request cost is writes into preallocated rows. When the
  // deployed subset is empty the full rows double as the classifier input
  // (projected_rows_ stays unused).
  // Non-finite rows carry no status: admit_staged() re-checks finiteness
  // lazily (misses only) so stage() never pays the sweep for hits.
  enum class StageStatus : std::uint8_t {
    ok,               // row classified normally
    degrade_predict,  // projection/predict error -> predict_failures
  };
  std::size_t staged_ = 0;
  bool batch_has_model_ = false;
  std::vector<float> full_rows_;       // staged_ x kFeatureCount
  std::vector<float> projected_rows_;  // staged_ x arity_ (subset mode)
  std::array<float, kAdmissionBatchCapacity> proba_{};
  std::array<StageStatus, kAdmissionBatchCapacity> status_{};
};

}  // namespace otac
