// Crash-safe persistence of the deployed classifier state (§4.4.3's daily
// handoff made restartable): a ClassifierSnapshot captures everything the
// serving tier needs to resume — deserialized-tree blob, history-table
// contents, trainer reservoir, criteria params, and the retrain-schedule
// counters — and CheckpointManager writes it with the classic durability
// recipe: temp file + per-section CRC32 + atomic rename, previous
// generation retained.
//
// Failure behavior is the contract, not an afterthought:
//  - save() either lands a complete, checksummed file or leaves the
//    previous generation(s) untouched (torn/partial writes stay in *.tmp);
//  - load() validates magic/version/section checksums and falls back
//    current -> previous -> cold start, never returning a half-read
//    snapshot;
//  - the write/rotate/rename path is instrumented with named failpoints
//    (failpoint_names()) so tests can script every crash point.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/history_table.h"
#include "core/resilience.h"
#include "core/trainer.h"
#include "obs/metrics.h"
#include "util/backoff.h"

namespace otac {

struct ClassifierSnapshot {
  /// Criteria/deployment params the state was computed under. Restoring
  /// into a system configured differently is allowed but reported.
  double m = 0.0;
  double h = 0.0;
  double p = 0.0;
  double cost_v = 0.0;

  /// DecisionTree::serialize() blob of the serving model; empty = the
  /// system had no model yet (admit-all phase).
  std::string model_blob;

  /// History table contents, oldest-first, plus its telemetry counter.
  std::vector<HistoryTable::Entry> history;
  std::uint64_t history_rectified = 0;

  /// Trainer reservoir (time-ascending) and per-minute budget cursor.
  std::vector<TrainingSample> samples;
  std::int64_t trainer_minute = std::numeric_limits<std::int64_t>::min();
  int trainer_minute_count = 0;

  /// Retrain-schedule counters.
  std::int64_t last_trained_day = std::numeric_limits<std::int64_t>::min();
  std::int64_t last_trained_time = std::numeric_limits<std::int64_t>::min();
  int trainings = 0;
};

enum class CheckpointOrigin {
  none,      ///< nothing loadable on disk — cold start
  current,   ///< the latest generation validated cleanly
  previous,  ///< the latest was corrupt/missing; previous generation used
};

[[nodiscard]] std::string checkpoint_origin_name(CheckpointOrigin origin);

struct CheckpointLoad {
  ClassifierSnapshot snapshot;  ///< default-constructed when origin == none
  CheckpointOrigin origin = CheckpointOrigin::none;
  /// Files present but rejected (bad magic/version/CRC/bounds) on the way
  /// to `origin` — degradation telemetry.
  int rejected_files = 0;
};

class CheckpointManager {
 public:
  /// `dir` is created on first save(); load() on a missing dir cold-starts.
  explicit CheckpointManager(std::string dir);

  /// Durably persist a snapshot. Throws (std::runtime_error or
  /// fail::FailpointTriggered) on any failure; on-disk generations are
  /// never left in a state load() cannot recover from.
  void save(const ClassifierSnapshot& snapshot);

  /// Validate-and-load with fallback; never throws on corrupt input.
  [[nodiscard]] CheckpointLoad load() const;

  // --- storage-fault retry path (core/resilience.h) --------------------

  /// Arm save/load retry with backoff. Without this call the *_with_retry
  /// entry points behave exactly like save()/load() (zero retries, no
  /// read-only state) — the historical first-failure contract.
  void configure_retry(const CheckpointRetryConfig& config);

  /// save() with bounded retry/backoff. Returns true when a generation
  /// landed. After the budget is exhausted: with
  /// `read_only_on_exhaustion` the manager enters a terminal *read-only*
  /// state — this and every later call return false (counted as
  /// checkpoint.read_only_skips) instead of throwing, trading durability
  /// for availability; without it the last error propagates.
  bool save_with_retry(const ClassifierSnapshot& snapshot);

  /// load() re-run (bounded) while transient I/O rejections leave nothing
  /// loadable; returns the last attempt's result (load() never throws).
  [[nodiscard]] CheckpointLoad load_with_retry();

  /// True once save retries were exhausted and the manager gave up on
  /// durability for the rest of its lifetime.
  [[nodiscard]] bool read_only() const noexcept { return read_only_; }

  [[nodiscard]] std::string current_path() const;
  [[nodiscard]] std::string previous_path() const;
  [[nodiscard]] std::string temp_path() const;
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Sectioned wire format (exposed for tests and external tooling).
  [[nodiscard]] static std::string encode(const ClassifierSnapshot& snapshot);
  /// Throws std::runtime_error on any structural or checksum violation.
  [[nodiscard]] static ClassifierSnapshot decode(const std::string& bytes);

  /// Every failpoint scripted inside save()/load() — the crash-recovery
  /// harness iterates this list so new crash points cannot dodge coverage.
  [[nodiscard]] static const std::vector<std::string>& failpoint_names();

  /// Bind durability telemetry: checkpoint.saves / save_failures,
  /// load-outcome counters (current / previous-fallback / cold,
  /// rejected_files), and wall-clock save/load duration histograms.
  /// The registry must outlive this manager; unbound managers pay no
  /// clock reads.
  void bind_metrics(obs::MetricsRegistry& registry);

 private:
  void save_impl(const ClassifierSnapshot& snapshot);
  [[nodiscard]] CheckpointLoad load_impl() const;

  std::string dir_;

  // Storage-fault retry state. Until configure_retry() the defaults below
  // make save_with_retry() a plain save() (zero retries, errors propagate,
  // never read-only).
  CheckpointRetryConfig retry_config_{.read_only_on_exhaustion = false};
  ExponentialBackoff retry_backoff_{BackoffConfig{.max_retries = 0}, 0};
  bool read_only_ = false;

  // Telemetry handles (null until bind_metrics).
  obs::MetricsRegistry::Counter saves_ = nullptr;
  obs::MetricsRegistry::Counter save_failures_ = nullptr;
  obs::MetricsRegistry::Counter save_retries_ = nullptr;
  obs::MetricsRegistry::Counter load_retries_ = nullptr;
  obs::MetricsRegistry::Counter read_only_skips_ = nullptr;
  obs::MetricsRegistry::Counter loads_current_ = nullptr;
  obs::MetricsRegistry::Counter loads_previous_ = nullptr;
  obs::MetricsRegistry::Counter loads_cold_ = nullptr;
  obs::MetricsRegistry::Counter rejected_files_ = nullptr;
  obs::FixedHistogram* save_seconds_ = nullptr;
  obs::FixedHistogram* load_seconds_ = nullptr;
};

}  // namespace otac
