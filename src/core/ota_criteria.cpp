#include "core/ota_criteria.h"

#include <algorithm>
#include <stdexcept>

namespace otac {

double one_time_fraction(const NextAccessInfo& oracle,
                         std::uint64_t num_requests, double m) {
  if (num_requests == 0) return 0.0;
  std::uint64_t one_time = 0;
  for (std::uint64_t i = 0; i < num_requests; ++i) {
    const std::uint64_t distance = oracle.reaccess_distance(i);
    if (distance == kNoNextAccess || static_cast<double>(distance) > m) {
      ++one_time;
    }
  }
  return static_cast<double>(one_time) / static_cast<double>(num_requests);
}

CriteriaResult compute_criteria(const Trace& trace,
                                const NextAccessInfo& oracle,
                                std::uint64_t capacity_bytes,
                                double hit_rate_estimate, int iterations) {
  if (capacity_bytes == 0) {
    throw std::invalid_argument("compute_criteria: zero capacity");
  }
  CriteriaResult result;
  result.h = std::clamp(hit_rate_estimate, 0.0, 0.999);
  result.mean_size = trace.catalog.mean_photo_size();
  if (result.mean_size <= 0.0) {
    throw std::invalid_argument("compute_criteria: empty catalog");
  }

  const double base =
      static_cast<double>(capacity_bytes) / (result.mean_size * (1.0 - result.h));
  result.p = 0.0;
  for (int round = 0; round < iterations; ++round) {
    result.m = base / std::max(1e-9, 1.0 - result.p);
    result.p = one_time_fraction(oracle, trace.requests.size(), result.m);
  }
  result.m = base / std::max(1e-9, 1.0 - result.p);
  return result;
}

double lirs_criteria(double m, double lir_fraction) {
  return m * lir_fraction;
}

}  // namespace otac
