// The classification system of Fig. 4: CART classifier + history table,
// wired into the cache as an AdmissionPolicy.
//
// Workflow on a miss (steps 4-7 of §4.2):
//   1. extract features (online, causal),
//   2. tree predicts one-time vs not,
//   3. "not one-time"  -> admit (cache the photo),
//   4. "one-time"      -> consult the history table: a photo we rejected
//      recently and which is back within reaccess distance M was
//      misclassified — rectify and admit; otherwise record the rejection
//      in the table and bypass the cache.
//
// The model retrains daily at the configured trough hour (§4.4.3).
#pragma once

#include <optional>
#include <vector>

#include "cachesim/admission.h"
#include "core/checkpoint.h"
#include "core/config.h"
#include "core/features.h"
#include "core/history_table.h"
#include "core/trainer.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"

namespace otac {

struct ClassifierSystemConfig {
  OtaConfig ota{};
  double m = 0.0;       // one-time-access criteria threshold
  double h = 0.0;       // hit-rate estimate (history-table sizing)
  double p = 0.0;       // one-time fraction (history-table sizing)
  double cost_v = 2.0;  // false-positive cost for this capacity (§4.4.1)
  /// Track per-day confusion of raw/corrected decisions against the true
  /// labels (full oracle) — powers Fig. 5. Small overhead.
  bool collect_daily_metrics = true;
};

struct DayClassifierMetrics {
  std::int64_t day = 0;
  ml::ConfusionMatrix raw;        // tree verdicts
  ml::ConfusionMatrix corrected;  // after history-table rectification
};

/// Every time the serving path degrades instead of failing it increments a
/// counter here (Flashield's rule: an ML cache component must fail toward
/// conservative admission, i.e. the paper's Original admit-all behavior).
struct DegradationCounters {
  /// Retrain threw — last-good tree kept serving.
  std::uint64_t retrain_failures = 0;
  /// A trained or checkpointed model failed validation — rejected; the
  /// previous tree (or admit-all when none) keeps serving.
  std::uint64_t rejected_models = 0;
  /// Requests whose features came out non-finite — admitted via fallback.
  std::uint64_t nonfinite_feature_requests = 0;
  /// predict() threw (arity mismatch etc.) — admitted via fallback.
  std::uint64_t predict_failures = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return retrain_failures + rejected_models + nonfinite_feature_requests +
           predict_failures;
  }
};

class ClassifierSystem final : public AdmissionPolicy {
 public:
  ClassifierSystem(const Trace& trace, const NextAccessInfo& oracle,
                   const ClassifierSystemConfig& config);

  bool admit(std::uint64_t index, const Request& request,
             const PhotoMeta& photo) override;
  void observe(std::uint64_t index, const Request& request,
               const PhotoMeta& photo, bool hit) override;
  [[nodiscard]] std::string name() const override { return "classifier"; }

  [[nodiscard]] bool has_model() const noexcept { return model_.has_value(); }
  [[nodiscard]] const ml::DecisionTree* model() const noexcept {
    return model_ ? &*model_ : nullptr;
  }
  [[nodiscard]] const HistoryTable& history() const noexcept {
    return history_;
  }
  [[nodiscard]] const std::vector<DayClassifierMetrics>& daily_metrics()
      const noexcept {
    return daily_;
  }
  [[nodiscard]] int trainings() const noexcept { return trainings_; }
  [[nodiscard]] const FeatureExtractor& extractor() const noexcept {
    return extractor_;
  }
  [[nodiscard]] const ClassifierSystemConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const DegradationCounters& degradation() const noexcept {
    return degradation_;
  }

  /// Capture the full serving state for crash-safe persistence.
  [[nodiscard]] ClassifierSnapshot snapshot() const;

  /// Install checkpointed state. A corrupt or arity-mismatched model blob
  /// leaves the system model-less (admit-all fallback), counts a rejected
  /// model, and returns false; every other section is still restored.
  bool restore(const ClassifierSnapshot& snapshot);

 private:
  void record_metric(std::int64_t day, int actual, int raw_prediction,
                     int corrected_prediction);

  /// A model is servable iff it is fitted, matches the deployed feature
  /// arity, and yields a finite probability on a probe row.
  [[nodiscard]] bool validate_model(const ml::DecisionTree& tree) const;

  ClassifierSystemConfig config_;
  const NextAccessInfo* oracle_;
  std::uint64_t trace_size_;

  FeatureExtractor extractor_;
  DailyTrainer trainer_;
  HistoryTable history_;
  std::optional<ml::DecisionTree> model_;

  std::int64_t last_trained_day_ = std::numeric_limits<std::int64_t>::min();
  std::int64_t last_trained_time_ = std::numeric_limits<std::int64_t>::min();
  int trainings_ = 0;
  DegradationCounters degradation_;
  std::vector<DayClassifierMetrics> daily_;
  std::array<float, FeatureExtractor::kFeatureCount> scratch_{};
  std::vector<float> projected_;  // scratch for the deployed feature subset
};

}  // namespace otac
