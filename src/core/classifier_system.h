// The classification system of Fig. 4: CART classifier + history table,
// wired into the cache as an AdmissionPolicy.
//
// Workflow on a miss (steps 4-7 of §4.2):
//   1. extract features (online, causal),
//   2. tree predicts one-time vs not,
//   3. "not one-time"  -> admit (cache the photo),
//   4. "one-time"      -> consult the history table: a photo we rejected
//      recently and which is back within reaccess distance M was
//      misclassified — rectify and admit; otherwise record the rejection
//      in the table and bypass the cache.
//
// The model retrains daily at the configured trough hour (§4.4.3).
//
// The per-request serving body lives in core/serving_core.h (shared with
// the sharded layer); this class adds model ownership, the retrain
// schedule, and crash-safe snapshot/restore.
#pragma once

#include <optional>
#include <vector>

#include "cachesim/admission.h"
#include "core/checkpoint.h"
#include "core/config.h"
#include "core/features.h"
#include "core/history_table.h"
#include "core/serving_core.h"
#include "core/trainer.h"
#include "ml/compiled_tree.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "obs/metrics.h"

namespace otac {

struct ClassifierSystemConfig {
  OtaConfig ota{};
  double m = 0.0;       // one-time-access criteria threshold
  double h = 0.0;       // hit-rate estimate (history-table sizing)
  double p = 0.0;       // one-time fraction (history-table sizing)
  double cost_v = 2.0;  // false-positive cost for this capacity (§4.4.1)
  /// Track per-day confusion of raw/corrected decisions against the true
  /// labels (full oracle) — powers Fig. 5. Small overhead.
  bool collect_daily_metrics = true;
};

class ClassifierSystem final : public AdmissionPolicy {
 public:
  ClassifierSystem(const Trace& trace, const NextAccessInfo& oracle,
                   const ClassifierSystemConfig& config);

  bool admit(std::uint64_t index, const Request& request,
             const PhotoMeta& photo) override;
  void observe(std::uint64_t index, const Request& request,
               const PhotoMeta& photo, bool hit) override;
  [[nodiscard]] std::string name() const override { return "classifier"; }

  [[nodiscard]] bool has_model() const noexcept { return model_.has_value(); }
  [[nodiscard]] const ml::DecisionTree* model() const noexcept {
    return model_ ? &*model_ : nullptr;
  }
  [[nodiscard]] const HistoryTable& history() const noexcept {
    return core_.history;
  }
  [[nodiscard]] const std::vector<DayClassifierMetrics>& daily_metrics()
      const noexcept {
    return core_.daily;
  }
  [[nodiscard]] int trainings() const noexcept { return trainings_; }
  [[nodiscard]] const FeatureExtractor& extractor() const noexcept {
    return core_.extractor;
  }
  [[nodiscard]] const ClassifierSystemConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const DegradationCounters& degradation() const noexcept {
    return core_.degradation;
  }

  /// Bind serving-path counters (via ServingCore) plus retrain telemetry:
  /// trainer.* fit outcome counters and the wall-clock fit-duration
  /// histogram. The registry must outlive this system.
  void bind_metrics(obs::MetricsRegistry& registry);

  /// Capture the full serving state for crash-safe persistence.
  [[nodiscard]] ClassifierSnapshot snapshot() const;

  /// Install checkpointed state. A corrupt or arity-mismatched model blob
  /// leaves the system model-less (admit-all fallback), counts a rejected
  /// model, and returns false; every other section is still restored.
  bool restore(const ClassifierSnapshot& snapshot);

 private:
  [[nodiscard]] std::size_t deployed_arity() const noexcept {
    return config_.ota.feature_subset.empty()
               ? FeatureExtractor::kFeatureCount
               : config_.ota.feature_subset.size();
  }

  ClassifierSystemConfig config_;
  ServingCore core_;
  DailyTrainer trainer_;
  std::optional<ml::DecisionTree> model_;
  // Flattened serving image of model_ (ml/compiled_tree.h), rebuilt at
  // every publish/restore; admit() serves from this, model_ stays the
  // snapshot/serialization source of truth.
  ml::CompiledTree compiled_;

  // Retrain telemetry handles (null until bind_metrics).
  obs::FixedHistogram* fit_seconds_ = nullptr;
  obs::MetricsRegistry::Counter fits_ = nullptr;
  obs::MetricsRegistry::Counter fit_skipped_ = nullptr;
  obs::MetricsRegistry::Counter models_published_ = nullptr;

  std::int64_t last_trained_day_ = std::numeric_limits<std::int64_t>::min();
  std::int64_t last_trained_time_ = std::numeric_limits<std::int64_t>::min();
  int trainings_ = 0;
};

}  // namespace otac
