// Public entry point: run a photo trace through a cache configured as
//  - original  : plain replacement policy (the "Original" curves),
//  - proposal  : + ML one-time-access-exclusion (the paper's system),
//  - ideal     : + oracle admission with 100% classification accuracy,
//  - bypass    : no caching at all (sanity lower bound).
//
// Handles the whole §4 recipe: next-access oracle, hit-rate estimation for
// the criteria, M fixpoint (LIRS-adjusted), cost matrix v by capacity,
// history-table sizing, daily retraining, and Eq. 3 latency.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "cachesim/cache_stats.h"
#include "cachesim/cache_policy.h"
#include "core/classifier_system.h"
#include "core/config.h"
#include "core/ota_criteria.h"
#include "core/resilience.h"
#include "obs/report.h"
#include "storage/latency_model.h"
#include "trace/next_access.h"
#include "trace/trace.h"

namespace otac {

enum class AdmissionMode { original, proposal, ideal, bypass };

[[nodiscard]] std::string admission_mode_name(AdmissionMode mode);

struct RunConfig {
  PolicyKind policy = PolicyKind::lru;
  std::uint64_t capacity_bytes = 0;
  AdmissionMode mode = AdmissionMode::original;
  double lirs_lir_fraction = 0.9;
  OtaConfig ota{};
  LatencyConfig latency{};
  /// Hit-rate estimate for the M criteria; when absent a plain LRU run at
  /// this capacity supplies it (that run is cached per capacity).
  std::optional<double> hit_rate_estimate;

  // --- Sharded serving layer (core/sharded_cache.h) ------------------------
  /// Number of independent keyspace shards. IntelligentCache::run ignores
  /// these (it is the shards=1 reference path); ShardedCache::run
  /// partitions photos across `shards` and replays them on `threads`
  /// workers (0 = one thread per shard, capped by the hardware).
  std::size_t shards = 1;
  std::size_t threads = 0;

  /// Overload-resilience layer (core/resilience.h): bounded shard queues
  /// with degradation states, the retrain watchdog, and storage retry.
  /// Every default keeps the replay bit-identical to a build without the
  /// layer; only ShardedCache::run consumes it.
  ResilienceConfig resilience{};
};

struct RunResult {
  CacheStats stats;
  CriteriaResult criteria;  // meaningful for proposal/ideal
  double cost_v = 0.0;
  std::size_t history_capacity = 0;
  std::vector<DayClassifierMetrics> daily;  // proposal only
  int trainings = 0;
  /// Serving-path degradations (proposal only): retrain failures, rejected
  /// models, fallback admits. Zero on a healthy run.
  DegradationCounters degradation;
  double mean_latency_us = 0.0;  // Eq. 3 with this run's hit rate

  /// Observability export: per-shard + merged metric snapshots, the
  /// barrier-snapshot time-series, and derived figures (src/obs/report.h).
  /// Deliberately EXCLUDED from operator== — it contains wall-clock fit
  /// timings, so result identity stays a statement about simulation
  /// behavior; the deterministic parts of the report are pinned by their
  /// own golden test (tests/obs/report_golden_test.cpp).
  obs::RunReport obs;

  /// Field-for-field equality over every simulation output (everything but
  /// `obs`) — the determinism and shards=1 equivalence tests pin merged
  /// results bit-identical, not merely approximately.
  friend bool operator==(const RunResult& a, const RunResult& b) {
    return a.stats == b.stats && a.criteria == b.criteria &&
           a.cost_v == b.cost_v && a.history_capacity == b.history_capacity &&
           a.daily == b.daily && a.trainings == b.trainings &&
           a.degradation == b.degradation &&
           a.mean_latency_us == b.mean_latency_us;
  }
};

class IntelligentCache {
 public:
  /// Computes the next-access oracle and dataset statistics once; the
  /// trace must outlive this object.
  explicit IntelligentCache(const Trace& trace);

  [[nodiscard]] RunResult run(const RunConfig& config) const;

  /// Plain-LRU hit rate at a capacity (memoized; used for the criteria).
  /// Thread-safe: run() and estimate_hit_rate() may be called concurrently
  /// from sweep workers.
  [[nodiscard]] double estimate_hit_rate(std::uint64_t capacity_bytes) const;

  [[nodiscard]] const NextAccessInfo& oracle() const noexcept {
    return oracle_;
  }
  [[nodiscard]] const Trace& trace() const noexcept { return *trace_; }
  /// Byte footprint of all distinct objects (capacity scaling anchor).
  [[nodiscard]] double total_object_bytes() const noexcept {
    return total_object_bytes_;
  }
  /// Cost v for a capacity per the §4.4.1 schedule.
  [[nodiscard]] double cost_v_for(std::uint64_t capacity_bytes,
                                  const OtaConfig& ota) const;

 private:
  const Trace* trace_;
  NextAccessInfo oracle_;
  double total_object_bytes_ = 0.0;
  mutable std::mutex hit_rate_mutex_;
  mutable std::unordered_map<std::uint64_t, double> hit_rate_cache_;
};

}  // namespace otac
