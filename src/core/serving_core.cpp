#include "core/serving_core.h"

#include <cmath>
#include <stdexcept>

namespace otac {

bool validate_serving_model(const ml::DecisionTree& tree,
                            std::size_t expected_arity) {
  if (tree.node_count() == 0) return false;
  if (tree.feature_importance().size() != expected_arity) return false;
  try {
    const std::vector<float> probe(expected_arity, 0.0F);
    const double proba = tree.predict_proba(probe);
    return std::isfinite(proba) && proba >= 0.0 && proba <= 1.0;
  } catch (const std::exception&) {
    return false;
  }
}

ServingCore::ServingCore(const PhotoCatalog& catalog,
                         const NextAccessInfo& oracle, ServingConfig config,
                         std::size_t history_capacity)
    : extractor(catalog),
      history(history_capacity),
      config_(std::move(config)),
      oracle_(&oracle) {}

void ServingCore::bind_metrics(obs::MetricsRegistry& registry) {
  metrics_.no_model_admits = registry.counter("serving.no_model_admits");
  metrics_.predict_one_time = registry.counter("serving.predict_one_time");
  metrics_.predict_reuse = registry.counter("serving.predict_reuse");
  metrics_.rectified = registry.counter("serving.rectified");
  metrics_.history_recorded = registry.counter("serving.history_recorded");
  metrics_bound_ = true;
}

bool ServingCore::admit(const ml::DecisionTree* model, std::uint64_t index,
                        const Request& request, const PhotoMeta& photo) {
  if (model == nullptr) {
    if constexpr (obs::kEnabled) {
      if (metrics_bound_) ++*metrics_.no_model_admits;
    }
    return config_.admit_before_first_model;
  }

  extractor.extract(request, photo, scratch_);
  bool predicted_one_time;
  const std::vector<std::size_t>& subset = config_.feature_subset;
  // Graceful degradation: a request whose features come out non-finite
  // (corrupt catalog entry, clock skew) or whose prediction throws must
  // fall back to plain admission — never crash the serving path, never
  // feed garbage through the tree.
  const auto finite = [](std::span<const float> values) {
    for (const float v : values) {
      if (!std::isfinite(v)) return false;
    }
    return true;
  };
  try {
    if (subset.empty()) {
      if (!finite(scratch_)) {
        ++degradation.nonfinite_feature_requests;
        return true;
      }
      predicted_one_time = model->predict(scratch_) == 1;
    } else {
      projected_.resize(subset.size());
      for (std::size_t k = 0; k < subset.size(); ++k) {
        // .at(): a misconfigured subset index degrades via the catch below
        // instead of reading out of bounds.
        projected_[k] = scratch_.at(subset[k]);
      }
      if (!finite(projected_)) {
        ++degradation.nonfinite_feature_requests;
        return true;
      }
      predicted_one_time = model->predict(projected_) == 1;
    }
  } catch (const std::exception&) {
    ++degradation.predict_failures;
    return true;
  }

  if constexpr (obs::kEnabled) {
    if (metrics_bound_) {
      ++*(predicted_one_time ? metrics_.predict_one_time
                             : metrics_.predict_reuse);
    }
  }

  bool final_one_time = predicted_one_time;
  if (predicted_one_time) {
    // A recently rejected photo returning within M was misclassified.
    if (history.rectify(request.photo, index, config_.m)) {
      final_one_time = false;
      if constexpr (obs::kEnabled) {
        if (metrics_bound_) ++*metrics_.rectified;
      }
    } else {
      history.record(request.photo, index);
      if constexpr (obs::kEnabled) {
        if (metrics_bound_) ++*metrics_.history_recorded;
      }
    }
  }

  if (config_.collect_daily_metrics) {
    // Ground truth from the full oracle (evaluation only, never fed back
    // into the model): one-time iff no reaccess within M.
    const std::uint64_t next = oracle_->next[index];
    const int actual = (next != kNoNextAccess &&
                        static_cast<double>(next - index) <= config_.m)
                           ? 0
                           : 1;
    record_metric(day_index(request.time), actual, predicted_one_time ? 1 : 0,
                  final_one_time ? 1 : 0);
  }
  return !final_one_time;
}

void ServingCore::record_metric(std::int64_t day, int actual,
                                int raw_prediction,
                                int corrected_prediction) {
  if (daily.empty() || daily.back().day != day) {
    daily.push_back(DayClassifierMetrics{day, {}, {}});
  }
  daily.back().raw.add(actual, raw_prediction);
  daily.back().corrected.add(actual, corrected_prediction);
}

std::span<const float> ServingCore::extract(const Request& request,
                                            const PhotoMeta& photo) {
  extractor.extract(request, photo, scratch_);
  return scratch_;
}

void ServingCore::observe(const Request& request, const PhotoMeta& photo) {
  extractor.observe(request, photo);
}

}  // namespace otac
