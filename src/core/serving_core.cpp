#include "core/serving_core.h"

#include <cmath>
#include <stdexcept>

namespace otac {

namespace {

bool all_finite(std::span<const float> values) noexcept {
  for (const float v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace

bool validate_serving_model(const ml::DecisionTree& tree,
                            std::size_t expected_arity) {
  if (tree.node_count() == 0) return false;
  if (tree.feature_importance().size() != expected_arity) return false;
  // The probe row is all-zero and constexpr-materialized: retrain barriers
  // validate without any transient allocation. 64 covers every deployed
  // arity (9 features) with a wide margin; larger arities take the cold
  // allocating fallback.
  static constexpr std::array<float, 64> kZeroProbe{};
  try {
    double proba;
    if (expected_arity <= kZeroProbe.size()) {
      proba = tree.predict_proba(
          std::span{kZeroProbe.data(), expected_arity});
    } else {
      // otac-lint: allow(hotpath-alloc) — unreachable for deployed models
      const std::vector<float> probe(expected_arity, 0.0F);
      proba = tree.predict_proba(probe);
    }
    return std::isfinite(proba) && proba >= 0.0 && proba <= 1.0;
  } catch (const std::exception&) {
    return false;
  }
}

ServingCore::ServingCore(const PhotoCatalog& catalog,
                         const NextAccessInfo& oracle, ServingConfig config,
                         std::size_t history_capacity)
    : extractor(catalog),
      history(history_capacity),
      config_(std::move(config)),
      oracle_(&oracle),
      arity_(config_.feature_subset.empty() ? FeatureExtractor::kFeatureCount
                                            : config_.feature_subset.size()),
      projected_(config_.feature_subset.size(), 0.0F),
      full_rows_(kAdmissionBatchCapacity * FeatureExtractor::kFeatureCount,
                 0.0F),
      projected_rows_(config_.feature_subset.empty()
                          ? 0
                          : kAdmissionBatchCapacity * arity_,
                      0.0F) {}

void ServingCore::bind_metrics(obs::MetricsRegistry& registry) {
  metrics_.no_model_admits = registry.counter("serving.no_model_admits");
  metrics_.predict_one_time = registry.counter("serving.predict_one_time");
  metrics_.predict_reuse = registry.counter("serving.predict_reuse");
  metrics_.rectified = registry.counter("serving.rectified");
  metrics_.history_recorded = registry.counter("serving.history_recorded");
  metrics_bound_ = true;
}

template <class Model>
bool ServingCore::admit_impl(const Model* model, std::uint64_t index,
                             const Request& request, const PhotoMeta& photo) {
  if (model == nullptr) {
    if constexpr (obs::kEnabled) {
      if (metrics_bound_) ++*metrics_.no_model_admits;
    }
    return config_.admit_before_first_model;
  }

  extractor.extract(request, photo, scratch_);
  bool predicted_one_time;
  const std::vector<std::size_t>& subset = config_.feature_subset;
  // Graceful degradation: a request whose features come out non-finite
  // (corrupt catalog entry, clock skew) or whose prediction throws must
  // fall back to plain admission — never crash the serving path, never
  // feed garbage through the tree.
  try {
    if (subset.empty()) {
      if (!all_finite(scratch_)) {
        ++degradation.nonfinite_feature_requests;
        return true;
      }
      predicted_one_time = model->predict(scratch_) == 1;
    } else {
      for (std::size_t k = 0; k < subset.size(); ++k) {
        // .at(): a misconfigured subset index degrades via the catch below
        // instead of reading out of bounds.
        projected_[k] = scratch_.at(subset[k]);
      }
      if (!all_finite(projected_)) {
        ++degradation.nonfinite_feature_requests;
        return true;
      }
      predicted_one_time = model->predict(projected_) == 1;
    }
  } catch (const std::exception&) {
    ++degradation.predict_failures;
    return true;
  }

  return finish_admit(predicted_one_time, index, request);
}

bool ServingCore::admit(const ml::DecisionTree* model, std::uint64_t index,
                        const Request& request, const PhotoMeta& photo) {
  return admit_impl(model, index, request, photo);
}

bool ServingCore::admit(const ml::CompiledTree* model, std::uint64_t index,
                        const Request& request, const PhotoMeta& photo) {
  return admit_impl(model, index, request, photo);
}

bool ServingCore::finish_admit(bool predicted_one_time, std::uint64_t index,
                               const Request& request) {
  if constexpr (obs::kEnabled) {
    if (metrics_bound_) {
      ++*(predicted_one_time ? metrics_.predict_one_time
                             : metrics_.predict_reuse);
    }
  }

  bool final_one_time = predicted_one_time;
  if (predicted_one_time) {
    // A recently rejected photo returning within M was misclassified.
    if (history.rectify(request.photo, index, config_.m)) {
      final_one_time = false;
      if constexpr (obs::kEnabled) {
        if (metrics_bound_) ++*metrics_.rectified;
      }
    } else {
      history.record(request.photo, index);
      if constexpr (obs::kEnabled) {
        if (metrics_bound_) ++*metrics_.history_recorded;
      }
    }
  }

  if (config_.collect_daily_metrics) {
    // Ground truth from the full oracle (evaluation only, never fed back
    // into the model): one-time iff no reaccess within M.
    const std::uint64_t next = oracle_->next[index];
    const int actual = (next != kNoNextAccess &&
                        static_cast<double>(next - index) <= config_.m)
                           ? 0
                           : 1;
    record_metric(day_index(request.time), actual, predicted_one_time ? 1 : 0,
                  final_one_time ? 1 : 0);
  }
  return !final_one_time;
}

std::span<const float> ServingCore::stage(const Request& request,
                                          const PhotoMeta& photo) {
  const std::size_t slot = staged_++;
  float* full =
      full_rows_.data() + slot * FeatureExtractor::kFeatureCount;
  const std::span<float, FeatureExtractor::kFeatureCount> full_row{
      full, FeatureExtractor::kFeatureCount};
  // Fused extract+observe: one pass over the per-photo/per-owner state.
  // The projection below reads the already-written row, not the extractor,
  // so observing first is safe.
  extractor.extract_and_observe(request, photo, full_row);

  // Record the scalar path's *first* degradation check here: a subset
  // index out of range (scalar: .at() throws -> predict_failures). The
  // finiteness sweep is deferred to admit_staged() — degradation counters
  // only ever move on misses, so sweeping per-miss instead of per-request
  // is observably identical and skips the work for every hit.
  const std::vector<std::size_t>& subset = config_.feature_subset;
  StageStatus status = StageStatus::ok;
  if (!subset.empty()) {
    float* projected = projected_rows_.data() + slot * arity_;
    for (std::size_t k = 0; k < subset.size(); ++k) {
      if (subset[k] >= FeatureExtractor::kFeatureCount) {
        status = StageStatus::degrade_predict;
        break;
      }
      projected[k] = full[subset[k]];
    }
  }
  status_[slot] = status;
  return full_row;
}

void ServingCore::classify_staged(const ml::CompiledTree* model) {
  batch_has_model_ = model != nullptr && !model->empty();
  if (!batch_has_model_ || staged_ == 0) return;
  const float* rows = config_.feature_subset.empty() ? full_rows_.data()
                                                     : projected_rows_.data();
  if (model->required_arity() <= arity_) {
    // The hot path: one branch-free level-synchronous walk over the whole
    // micro-batch. Degraded and non-finite rows ride along (NaN routes
    // right, same as the scalar `<=`; their probability is discarded by
    // admit_staged) — cheaper than compacting.
    model->predict_proba_batch(rows, staged_, arity_, proba_.data());
    return;
  }
  // Defensive slow path: a model that reads features beyond the deployed
  // arity cannot take the unchecked batch walk. validate_serving_model
  // rejects such models before publication, so this only runs for
  // hand-constructed slots; semantics match the scalar path exactly.
  // Non-finite rows are skipped un-marked: the scalar path checks
  // finiteness *before* predicting, so on a miss admit_staged's own
  // finiteness check (not a predict failure) must claim them.
  for (std::size_t slot = 0; slot < staged_; ++slot) {
    if (status_[slot] != StageStatus::ok) continue;
    const std::span<const float> row{rows + slot * arity_, arity_};
    if (!all_finite(row)) continue;
    try {
      proba_[slot] = static_cast<float>(model->predict_proba(row));
    } catch (const std::exception&) {
      status_[slot] = StageStatus::degrade_predict;
    }
  }
}

bool ServingCore::admit_staged(std::size_t slot, std::uint64_t index,
                               const Request& request,
                               const PhotoMeta& photo) {
  (void)photo;
  if (!batch_has_model_) {
    if constexpr (obs::kEnabled) {
      if (metrics_bound_) ++*metrics_.no_model_admits;
    }
    return config_.admit_before_first_model;
  }
  // Scalar degradation order, reproduced exactly: projection error first
  // (stage() marked it; scalar .at() throws before the finiteness sweep),
  // then the deferred finiteness check of the row the model saw, then a
  // predict failure (classify_staged's fallback only marks finite rows,
  // matching the scalar check-then-predict order).
  if (status_[slot] == StageStatus::degrade_predict) {
    ++degradation.predict_failures;
    return true;
  }
  const float* rows = config_.feature_subset.empty() ? full_rows_.data()
                                                     : projected_rows_.data();
  if (!all_finite({rows + slot * arity_, arity_})) {
    ++degradation.nonfinite_feature_requests;
    return true;
  }
  // float >= 0.5F iff double(float) >= 0.5: identical verdict to the
  // scalar model->predict(...) == 1.
  return finish_admit(proba_[slot] >= 0.5F, index, request);
}

void ServingCore::record_metric(std::int64_t day, int actual,
                                int raw_prediction,
                                int corrected_prediction) {
  if (daily.empty() || daily.back().day != day) {
    // Cold: once per simulated day. otac-lint: allow(hotpath-alloc)
    daily.push_back(DayClassifierMetrics{day, {}, {}});
  }
  daily.back().raw.add(actual, raw_prediction);
  daily.back().corrected.add(actual, corrected_prediction);
}

std::span<const float> ServingCore::extract(const Request& request,
                                            const PhotoMeta& photo) {
  extractor.extract(request, photo, scratch_);
  return scratch_;
}

void ServingCore::observe(const Request& request, const PhotoMeta& photo) {
  extractor.observe(request, photo);
}

}  // namespace otac
