#include "core/classifier_system.h"

#include <cmath>
#include <stdexcept>

namespace otac {

ClassifierSystem::ClassifierSystem(const Trace& trace,
                                   const NextAccessInfo& oracle,
                                   const ClassifierSystemConfig& config)
    : config_(config),
      oracle_(&oracle),
      trace_size_(trace.requests.size()),
      extractor_(trace.catalog),
      trainer_(oracle, config.ota, config.m, config.cost_v),
      history_(history_table_capacity(config.m, config.h, config.p,
                                      config.ota.history_table_factor)) {}

bool ClassifierSystem::admit(std::uint64_t index, const Request& request,
                             const PhotoMeta& photo) {
  if (!model_) return config_.ota.admit_before_first_model;

  extractor_.extract(request, photo, scratch_);
  bool predicted_one_time;
  const std::vector<std::size_t>& subset = config_.ota.feature_subset;
  // Graceful degradation: a request whose features come out non-finite
  // (corrupt catalog entry, clock skew) or whose prediction throws must
  // fall back to plain admission — never crash the serving path, never
  // feed garbage through the tree.
  const auto finite = [](std::span<const float> values) {
    for (const float v : values) {
      if (!std::isfinite(v)) return false;
    }
    return true;
  };
  try {
    if (subset.empty()) {
      if (!finite(scratch_)) {
        ++degradation_.nonfinite_feature_requests;
        return true;
      }
      predicted_one_time = model_->predict(scratch_) == 1;
    } else {
      projected_.resize(subset.size());
      for (std::size_t k = 0; k < subset.size(); ++k) {
        // .at(): a misconfigured subset index degrades via the catch below
        // instead of reading out of bounds.
        projected_[k] = scratch_.at(subset[k]);
      }
      if (!finite(projected_)) {
        ++degradation_.nonfinite_feature_requests;
        return true;
      }
      predicted_one_time = model_->predict(projected_) == 1;
    }
  } catch (const std::exception&) {
    ++degradation_.predict_failures;
    return true;
  }

  bool final_one_time = predicted_one_time;
  if (predicted_one_time) {
    // A recently rejected photo returning within M was misclassified.
    if (history_.rectify(request.photo, index, config_.m)) {
      final_one_time = false;
    } else {
      history_.record(request.photo, index);
    }
  }

  if (config_.collect_daily_metrics) {
    // Ground truth from the full oracle (evaluation only, never fed back
    // into the model): one-time iff no reaccess within M.
    const std::uint64_t next = oracle_->next[index];
    const int actual = (next != kNoNextAccess &&
                        static_cast<double>(next - index) <= config_.m)
                           ? 0
                           : 1;
    record_metric(day_index(request.time), actual, predicted_one_time ? 1 : 0,
                  final_one_time ? 1 : 0);
  }
  return !final_one_time;
}

void ClassifierSystem::record_metric(std::int64_t day, int actual,
                                     int raw_prediction,
                                     int corrected_prediction) {
  if (daily_.empty() || daily_.back().day != day) {
    daily_.push_back(DayClassifierMetrics{day, {}, {}});
  }
  daily_.back().raw.add(actual, raw_prediction);
  daily_.back().corrected.add(actual, corrected_prediction);
}

void ClassifierSystem::observe(std::uint64_t index, const Request& request,
                               const PhotoMeta& photo, bool /*hit*/) {
  // Sample for training *before* mutating state: features must describe
  // the stream as the classifier saw it at admit() time.
  extractor_.extract(request, photo, scratch_);
  trainer_.offer(index, request, scratch_);
  extractor_.observe(request, photo);

  // Retraining (§4.4.3): daily at the trough hour, or — in the
  // "incremental" alternative — every retrain_interval_hours.
  bool due = false;
  if (config_.ota.retrain_interval_hours > 0.0) {
    const auto interval = static_cast<std::int64_t>(
        config_.ota.retrain_interval_hours * kSecondsPerHour);
    due = last_trained_time_ == std::numeric_limits<std::int64_t>::min() ||
          request.time.seconds - last_trained_time_ >= interval;
  } else {
    const std::int64_t day = day_index(request.time);
    due = hour_of_day(request.time) >= config_.ota.retrain_hour &&
          day > last_trained_day_;
    if (due) last_trained_day_ = day;
  }
  if (due) {
    // Retrain failures and rejected models must not take down serving:
    // keep the last-good tree (or the admit-all fallback when none).
    try {
      if (auto tree = trainer_.train(index, request.time)) {
        if (validate_model(*tree)) {
          model_ = std::move(tree);
          ++trainings_;
        } else {
          ++degradation_.rejected_models;
        }
      }
    } catch (const std::exception&) {
      ++degradation_.retrain_failures;
    }
    last_trained_time_ = request.time.seconds;
  }
}

bool ClassifierSystem::validate_model(const ml::DecisionTree& tree) const {
  const std::vector<std::size_t>& subset = config_.ota.feature_subset;
  const std::size_t arity =
      subset.empty() ? FeatureExtractor::kFeatureCount : subset.size();
  if (tree.node_count() == 0) return false;
  if (tree.feature_importance().size() != arity) return false;
  try {
    const std::vector<float> probe(arity, 0.0F);
    const double proba = tree.predict_proba(probe);
    return std::isfinite(proba) && proba >= 0.0 && proba <= 1.0;
  } catch (const std::exception&) {
    return false;
  }
}

ClassifierSnapshot ClassifierSystem::snapshot() const {
  ClassifierSnapshot snap;
  snap.m = config_.m;
  snap.h = config_.h;
  snap.p = config_.p;
  snap.cost_v = config_.cost_v;
  if (model_) snap.model_blob = model_->serialize();
  snap.history = history_.entries();
  snap.history_rectified = history_.rectified_count();
  snap.samples.assign(trainer_.samples().begin(), trainer_.samples().end());
  snap.trainer_minute = trainer_.current_minute();
  snap.trainer_minute_count = trainer_.minute_count();
  snap.last_trained_day = last_trained_day_;
  snap.last_trained_time = last_trained_time_;
  snap.trainings = trainings_;
  return snap;
}

bool ClassifierSystem::restore(const ClassifierSnapshot& snapshot) {
  history_.restore(snapshot.history, snapshot.history_rectified);
  trainer_.restore({snapshot.samples.begin(), snapshot.samples.end()},
                   snapshot.trainer_minute, snapshot.trainer_minute_count);
  last_trained_day_ = snapshot.last_trained_day;
  last_trained_time_ = snapshot.last_trained_time;
  trainings_ = snapshot.trainings;

  model_.reset();  // absent/corrupt model == admit-all (Original behavior)
  if (snapshot.model_blob.empty()) return true;
  try {
    ml::DecisionTree tree = ml::DecisionTree::deserialize(snapshot.model_blob);
    if (!validate_model(tree)) {
      throw std::invalid_argument("model failed validation");
    }
    model_ = std::move(tree);
    return true;
  } catch (const std::exception&) {
    ++degradation_.rejected_models;
    return false;
  }
}

}  // namespace otac
