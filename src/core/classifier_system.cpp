#include "core/classifier_system.h"

namespace otac {

ClassifierSystem::ClassifierSystem(const Trace& trace,
                                   const NextAccessInfo& oracle,
                                   const ClassifierSystemConfig& config)
    : config_(config),
      oracle_(&oracle),
      trace_size_(trace.requests.size()),
      extractor_(trace.catalog),
      trainer_(oracle, config.ota, config.m, config.cost_v),
      history_(history_table_capacity(config.m, config.h, config.p,
                                      config.ota.history_table_factor)) {}

bool ClassifierSystem::admit(std::uint64_t index, const Request& request,
                             const PhotoMeta& photo) {
  if (!model_) return config_.ota.admit_before_first_model;

  extractor_.extract(request, photo, scratch_);
  bool predicted_one_time;
  const std::vector<std::size_t>& subset = config_.ota.feature_subset;
  if (subset.empty()) {
    predicted_one_time = model_->predict(scratch_) == 1;
  } else {
    projected_.resize(subset.size());
    for (std::size_t k = 0; k < subset.size(); ++k) {
      projected_[k] = scratch_[subset[k]];
    }
    predicted_one_time = model_->predict(projected_) == 1;
  }

  bool final_one_time = predicted_one_time;
  if (predicted_one_time) {
    // A recently rejected photo returning within M was misclassified.
    if (history_.rectify(request.photo, index, config_.m)) {
      final_one_time = false;
    } else {
      history_.record(request.photo, index);
    }
  }

  if (config_.collect_daily_metrics) {
    // Ground truth from the full oracle (evaluation only, never fed back
    // into the model): one-time iff no reaccess within M.
    const std::uint64_t next = oracle_->next[index];
    const int actual = (next != kNoNextAccess &&
                        static_cast<double>(next - index) <= config_.m)
                           ? 0
                           : 1;
    record_metric(day_index(request.time), actual, predicted_one_time ? 1 : 0,
                  final_one_time ? 1 : 0);
  }
  return !final_one_time;
}

void ClassifierSystem::record_metric(std::int64_t day, int actual,
                                     int raw_prediction,
                                     int corrected_prediction) {
  if (daily_.empty() || daily_.back().day != day) {
    daily_.push_back(DayClassifierMetrics{day, {}, {}});
  }
  daily_.back().raw.add(actual, raw_prediction);
  daily_.back().corrected.add(actual, corrected_prediction);
}

void ClassifierSystem::observe(std::uint64_t index, const Request& request,
                               const PhotoMeta& photo, bool /*hit*/) {
  // Sample for training *before* mutating state: features must describe
  // the stream as the classifier saw it at admit() time.
  extractor_.extract(request, photo, scratch_);
  trainer_.offer(index, request, scratch_);
  extractor_.observe(request, photo);

  // Retraining (§4.4.3): daily at the trough hour, or — in the
  // "incremental" alternative — every retrain_interval_hours.
  bool due = false;
  if (config_.ota.retrain_interval_hours > 0.0) {
    const auto interval = static_cast<std::int64_t>(
        config_.ota.retrain_interval_hours * kSecondsPerHour);
    due = last_trained_time_ == std::numeric_limits<std::int64_t>::min() ||
          request.time.seconds - last_trained_time_ >= interval;
  } else {
    const std::int64_t day = day_index(request.time);
    due = hour_of_day(request.time) >= config_.ota.retrain_hour &&
          day > last_trained_day_;
    if (due) last_trained_day_ = day;
  }
  if (due) {
    if (auto tree = trainer_.train(index, request.time)) {
      model_ = std::move(tree);
      ++trainings_;
    }
    last_trained_time_ = request.time.seconds;
  }
}

}  // namespace otac
