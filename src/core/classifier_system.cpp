#include "core/classifier_system.h"

#include <chrono>
#include <stdexcept>

#include "core/run_metrics.h"

namespace otac {

namespace {

ServingConfig serving_config_of(const ClassifierSystemConfig& config) {
  ServingConfig serving;
  serving.feature_subset = config.ota.feature_subset;
  serving.m = config.m;
  serving.collect_daily_metrics = config.collect_daily_metrics;
  serving.admit_before_first_model = config.ota.admit_before_first_model;
  return serving;
}

}  // namespace

ClassifierSystem::ClassifierSystem(const Trace& trace,
                                   const NextAccessInfo& oracle,
                                   const ClassifierSystemConfig& config)
    : config_(config),
      core_(trace.catalog, oracle, serving_config_of(config),
            history_table_capacity(config.m, config.h, config.p,
                                   config.ota.history_table_factor)),
      trainer_(oracle, config.ota, config.m, config.cost_v) {}

bool ClassifierSystem::admit(std::uint64_t index, const Request& request,
                             const PhotoMeta& photo) {
  return core_.admit(model_ ? &compiled_ : nullptr, index, request, photo);
}

void ClassifierSystem::observe(std::uint64_t index, const Request& request,
                               const PhotoMeta& photo, bool /*hit*/) {
  // Sample for training *before* mutating state: features must describe
  // the stream as the classifier saw it at admit() time.
  trainer_.offer(index, request, core_.extract(request, photo));
  core_.observe(request, photo);

  // Retraining (§4.4.3): daily at the trough hour, or — in the
  // "incremental" alternative — every retrain_interval_hours.
  bool due = false;
  if (config_.ota.retrain_interval_hours > 0.0) {
    const auto interval = static_cast<std::int64_t>(
        config_.ota.retrain_interval_hours * kSecondsPerHour);
    due = last_trained_time_ == std::numeric_limits<std::int64_t>::min() ||
          request.time.seconds - last_trained_time_ >= interval;
  } else {
    const std::int64_t day = day_index(request.time);
    due = hour_of_day(request.time) >= config_.ota.retrain_hour &&
          day > last_trained_day_;
    if (due) last_trained_day_ = day;
  }
  if (due) {
    // Retrain failures and rejected models must not take down serving:
    // keep the last-good tree (or the admit-all fallback when none).
    // Fit timing is observed only when metrics are bound (no clock reads
    // otherwise) — wall-clock durations are the one non-deterministic
    // metric family and are excluded from determinism pins.
    const bool timed = fit_seconds_ != nullptr;
    const auto started =
        timed ? std::chrono::steady_clock::now()
              : std::chrono::steady_clock::time_point{};
    try {
      if (auto tree = trainer_.train(index, request.time)) {
        if (fits_ != nullptr) ++*fits_;
        if (validate_serving_model(*tree, deployed_arity())) {
          model_ = std::move(tree);
          compiled_ = ml::CompiledTree::compile(*model_);
          ++trainings_;
          if (models_published_ != nullptr) ++*models_published_;
        } else {
          ++core_.degradation.rejected_models;
        }
      } else if (fit_skipped_ != nullptr) {
        ++*fit_skipped_;
      }
    } catch (const std::exception&) {
      ++core_.degradation.retrain_failures;
    }
    if (timed) {
      fit_seconds_->add(std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - started)
                            .count());
    }
    last_trained_time_ = request.time.seconds;
  }
}

void ClassifierSystem::bind_metrics(obs::MetricsRegistry& registry) {
  core_.bind_metrics(registry);
  fit_seconds_ =
      registry.histogram(kFitHistogramName, duration_histogram_bounds_s());
  fits_ = registry.counter("trainer.fits");
  fit_skipped_ = registry.counter("trainer.fit_skipped");
  models_published_ = registry.counter("trainer.models_published");
}

ClassifierSnapshot ClassifierSystem::snapshot() const {
  ClassifierSnapshot snap;
  snap.m = config_.m;
  snap.h = config_.h;
  snap.p = config_.p;
  snap.cost_v = config_.cost_v;
  if (model_) snap.model_blob = model_->serialize();
  snap.history = core_.history.entries();
  snap.history_rectified = core_.history.rectified_count();
  snap.samples.assign(trainer_.samples().begin(), trainer_.samples().end());
  snap.trainer_minute = trainer_.current_minute();
  snap.trainer_minute_count = trainer_.minute_count();
  snap.last_trained_day = last_trained_day_;
  snap.last_trained_time = last_trained_time_;
  snap.trainings = trainings_;
  return snap;
}

bool ClassifierSystem::restore(const ClassifierSnapshot& snapshot) {
  core_.history.restore(snapshot.history, snapshot.history_rectified);
  trainer_.restore({snapshot.samples.begin(), snapshot.samples.end()},
                   snapshot.trainer_minute, snapshot.trainer_minute_count);
  last_trained_day_ = snapshot.last_trained_day;
  last_trained_time_ = snapshot.last_trained_time;
  trainings_ = snapshot.trainings;

  model_.reset();  // absent/corrupt model == admit-all (Original behavior)
  if (snapshot.model_blob.empty()) return true;
  try {
    ml::DecisionTree tree = ml::DecisionTree::deserialize(snapshot.model_blob);
    if (!validate_serving_model(tree, deployed_arity())) {
      throw std::invalid_argument("model failed validation");
    }
    model_ = std::move(tree);
    compiled_ = ml::CompiledTree::compile(*model_);
    return true;
  } catch (const std::exception&) {
    ++core_.degradation.rejected_models;
    return false;
  }
}

}  // namespace otac
