// Daily training pipeline (§4.4.3 + §3.1.1): sample the request stream at
// 100 records/minute, label each sample against the one-time-access
// criteria (reaccess distance > M), apply the cost matrix, and fit a CART
// tree on the previous 24 hours.
//
// Labeling is *log-truncated*: at training time T we only know accesses
// that already happened, so a sample whose next access lies beyond T is
// labeled from what the log shows (not yet reaccessed => one-time so far).
// This is exactly what an online production trainer can do, and avoids
// oracle leakage into the deployed model.
#pragma once

#include <deque>
#include <optional>

#include "core/config.h"
#include "core/features.h"
#include "ml/decision_tree.h"
#include "trace/next_access.h"
#include "trace/trace.h"

namespace otac {

struct TrainingSample {
  std::array<float, FeatureExtractor::kFeatureCount> features;
  std::uint64_t index = 0;  // trace position
  SimTime time{};
};

class DailyTrainer {
 public:
  DailyTrainer(const NextAccessInfo& oracle, OtaConfig config, double m,
               double cost_v);

  /// Offer one request's features; kept iff the per-minute sample budget
  /// (§3.1.1: 100/minute) still has room.
  void offer(std::uint64_t index, const Request& request,
             std::span<const float> features);

  /// Append already-budgeted samples (time/index-ascending) directly to the
  /// reservoir. Used by the sharded serving layer, whose per-shard samplers
  /// apply their slice of the per-minute budget before the trainer drains
  /// the shard buffers at a retrain barrier.
  void ingest(std::span<const TrainingSample> samples);

  /// One-time-access label for a sample at `index` given knowledge up to
  /// `known_until` (exclusive): 1 = one-time.
  [[nodiscard]] static int label_of(const NextAccessInfo& oracle,
                                    std::uint64_t index, double m,
                                    std::uint64_t known_until);

  /// Fit a tree on samples inside the training window ending at `now`.
  /// Returns nullopt when there are too few samples or only one class.
  [[nodiscard]] std::optional<ml::DecisionTree> train(std::uint64_t now_index,
                                                      SimTime now);

  [[nodiscard]] std::size_t sample_count() const noexcept {
    return samples_.size();
  }
  [[nodiscard]] double cost_v() const noexcept { return cost_v_; }

  // --- checkpointing ---------------------------------------------------
  [[nodiscard]] const std::deque<TrainingSample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::int64_t current_minute() const noexcept {
    return current_minute_;
  }
  [[nodiscard]] int minute_count() const noexcept { return minute_count_; }

  /// Replace the reservoir with checkpointed samples (time-ascending) and
  /// the per-minute budget cursor.
  void restore(std::deque<TrainingSample> samples, std::int64_t minute,
               int minute_count);

 private:
  const NextAccessInfo* oracle_;
  OtaConfig config_;
  double m_;
  double cost_v_;

  std::deque<TrainingSample> samples_;
  std::int64_t current_minute_ = std::numeric_limits<std::int64_t>::min();
  int minute_count_ = 0;
};

}  // namespace otac
