// All constants of the one-time-access-exclusion system, with the paper's
// defaults (§3.1.2, §4.3, §4.4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace otac {

struct OtaConfig {
  // --- Decision tree (§3.1.2) ------------------------------------------------
  std::size_t tree_max_splits = 30;  // "upper limit of splitting times"
  std::size_t tree_max_depth = 12;   // backstop; observed height ~5

  // --- One-time-access criteria (§4.3) --------------------------------------
  int criteria_iterations = 3;  // fixpoint rounds for p (and M)

  // --- Cost-sensitive learning (§4.4.1) --------------------------------------
  // v = cost of a false positive (wrongly excluding a reused photo).
  // Paper: v=2 for 2-12 GB cache, v=3 for 12-20 GB (1:100-sampled sizes).
  // We switch on the same fraction of the dataset those sizes represent.
  double cost_v_small = 2.0;
  double cost_v_large = 3.0;
  // Capacity threshold as a fraction of total dataset bytes; 12 GB of the
  // paper's ~450 GB sampled dataset ~ 2.7%.
  double cost_switch_capacity_fraction = 0.027;

  // --- History table (§4.4.2) -------------------------------------------------
  // capacity = M * (1-h) * p * history_table_factor entries.
  double history_table_factor = 0.05;

  // --- Retraining (§4.4.3) ------------------------------------------------------
  // The paper weighs two options: (a) offline daily retraining at the load
  // trough, (b) near-real-time incremental updating. It deploys (a); we
  // implement both. retrain_interval_hours == 0 selects the paper's daily
  // schedule (at retrain_hour); > 0 refits on the sliding window every that
  // many simulated hours (the "incremental" alternative, ablated in
  // bench/ablate_retrain).
  int retrain_hour = 5;                    // 05:00, the daily load trough
  double retrain_interval_hours = 0.0;
  int sample_records_per_minute = 100;     // §3.1.1 sampling rate
  double training_window_days = 1.0;       // train on previous 24 h

  // Before the first model exists the system admits everything (classic
  // cache behaviour).
  bool admit_before_first_model = true;

  // --- Deployed feature subset (§3.2.2) -----------------------------------------
  // Indices into FeatureExtractor's nine features; empty = use all nine.
  // The paper deploys the forward-selected five {avg views, recency, age,
  // access hour, type}; bench/ablate_feature_sets compares subsets live.
  std::vector<std::size_t> feature_subset;
};

}  // namespace otac
