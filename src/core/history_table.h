// History table (§4.4.2): bounded FIFO map of photos recently classified as
// one-time-access. If such a photo comes back within reaccess distance M,
// the earlier verdict was wrong — the table "rectifies" it and the photo is
// admitted. Capacity is M(1-h)p * 0.05 entries (~2-5% of the cache
// metadata table); eviction is FIFO.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "trace/types.h"

namespace otac {

class HistoryTable {
 public:
  /// capacity_entries == 0 disables the table (every lookup misses).
  explicit HistoryTable(std::size_t capacity_entries);

  /// Record a photo just rejected as one-time at trace position `index`.
  /// Re-recording refreshes the stored position (and FIFO slot).
  void record(PhotoId photo, std::uint64_t index);

  /// On a subsequent miss of `photo` at `index`: returns true — and removes
  /// the entry — when the photo is present with reaccess distance < M,
  /// i.e. the previous one-time classification is now known to be wrong.
  bool rectify(PhotoId photo, std::uint64_t index, double m);

  [[nodiscard]] bool contains(PhotoId photo) const {
    return map_.contains(photo);
  }
  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Number of successful rectifications so far (telemetry).
  [[nodiscard]] std::uint64_t rectified_count() const noexcept {
    return rectified_;
  }

  struct Entry {
    PhotoId photo = 0;
    std::uint64_t index = 0;
  };

  /// Current contents, oldest-first (checkpointing).
  [[nodiscard]] std::vector<Entry> entries() const;

  /// Replace the contents with a checkpointed snapshot (oldest-first).
  /// Entries beyond capacity are dropped FIFO-style (oldest first), so a
  /// snapshot from a larger table degrades instead of overflowing.
  void restore(const std::vector<Entry>& oldest_first,
               std::uint64_t rectified_count);

 private:
  struct Slot {
    PhotoId photo;
    std::uint64_t index;
  };

  std::size_t capacity_;
  std::list<Slot> fifo_;  // front = oldest
  std::unordered_map<PhotoId, std::list<Slot>::iterator> map_;
  std::uint64_t rectified_ = 0;
};

/// Paper's sizing rule: M(1-h)p * factor entries, at least 1 (unless the
/// product is zero).
[[nodiscard]] std::size_t history_table_capacity(double m, double h, double p,
                                                 double factor);

}  // namespace otac
