// History table (§4.4.2): bounded FIFO map of photos recently classified as
// one-time-access. If such a photo comes back within reaccess distance M,
// the earlier verdict was wrong — the table "rectifies" it and the photo is
// admitted. Capacity is M(1-h)p * 0.05 entries (~2-5% of the cache
// metadata table); eviction is FIFO.
//
// Layout: a pool of slots threaded onto an intrusive doubly-linked FIFO
// (array indices, not pointers) plus a linear-probe open-addressing index
// with backward-shift deletion, kept at <= 0.5 load factor. Steady-state
// record()/rectify() cost one hash probe plus a few slot writes with zero
// heap allocation — the previous std::list + std::unordered_map layout
// paid two node allocations and two pointer-chased cache misses per
// record() on the admission hot path. The pool grows by doubling up to
// capacity (amortized O(1), so a pathologically huge configured capacity
// is not pre-allocated), after which no record ever allocates again.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/types.h"

namespace otac {

class HistoryTable {
 public:
  /// capacity_entries == 0 disables the table (every lookup misses).
  explicit HistoryTable(std::size_t capacity_entries);

  /// Record a photo just rejected as one-time at trace position `index`.
  /// Re-recording refreshes the stored position (and FIFO slot).
  void record(PhotoId photo, std::uint64_t index);

  /// On a subsequent miss of `photo` at `index`: returns true — and removes
  /// the entry — when the photo is present with reaccess distance < M,
  /// i.e. the previous one-time classification is now known to be wrong.
  bool rectify(PhotoId photo, std::uint64_t index, double m);

  [[nodiscard]] bool contains(PhotoId photo) const noexcept {
    return find_slot(photo, nullptr) != kNil;
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Number of successful rectifications so far (telemetry).
  [[nodiscard]] std::uint64_t rectified_count() const noexcept {
    return rectified_;
  }

  /// Hint the caches toward the bucket a record()/rectify() of this photo
  /// will probe (batched admission warms a whole micro-batch up front).
  void prefetch(PhotoId photo) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    if (!buckets_.empty()) __builtin_prefetch(&buckets_[home_bucket(photo)]);
#else
    (void)photo;
#endif
  }

  struct Entry {
    PhotoId photo = 0;
    std::uint64_t index = 0;
  };

  /// Current contents, oldest-first (checkpointing).
  [[nodiscard]] std::vector<Entry> entries() const;

  /// Replace the contents with a checkpointed snapshot (oldest-first).
  /// Entries beyond capacity are dropped FIFO-style (oldest first), so a
  /// snapshot from a larger table degrades instead of overflowing.
  void restore(const std::vector<Entry>& oldest_first,
               std::uint64_t rectified_count);

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFU;

  struct Slot {
    PhotoId photo = 0;
    std::uint64_t index = 0;
    std::uint32_t prev = kNil;  // FIFO link toward older
    std::uint32_t next = kNil;  // FIFO link toward newer; free-list link
  };

  /// Fibonacci multiplicative hash — a fixed constant, not std::hash,
  /// whose ordering is implementation-defined and therefore banned for
  /// state that feeds the golden hashes. Only valid once buckets exist.
  [[nodiscard]] std::size_t home_bucket(PhotoId photo) const noexcept {
    return static_cast<std::size_t>((photo * UINT32_C(2654435769)) >>
                                    hash_shift_);
  }

  /// Slot holding `photo` (kNil when absent); on a hit, *bucket gets the
  /// probe position the entry was found at (for O(1) removal).
  [[nodiscard]] std::uint32_t find_slot(PhotoId photo,
                                        std::size_t* bucket) const noexcept;
  void grow();
  void insert_new(PhotoId photo, std::uint64_t index) noexcept;
  void unlink_fifo(std::uint32_t s) noexcept;
  void move_to_newest(std::uint32_t s) noexcept;
  void erase_hole(std::size_t hole) noexcept;
  void release_slot(std::uint32_t s, std::size_t bucket) noexcept;
  void evict_oldest() noexcept;

  std::size_t capacity_;
  std::vector<Slot> slots_;             // doubles up to capacity_, then fixed
  std::vector<std::uint32_t> buckets_;  // power-of-two sized; kNil = empty
  std::size_t bucket_mask_ = 0;
  unsigned hash_shift_ = 32;  // 32 - log2(buckets); unused until grow()
  std::uint32_t head_ = kNil;  // oldest
  std::uint32_t tail_ = kNil;  // newest
  std::uint32_t free_ = kNil;
  std::size_t size_ = 0;
  std::uint64_t rectified_ = 0;
};

/// Paper's sizing rule: M(1-h)p * factor entries, at least 1 (unless the
/// product is zero).
[[nodiscard]] std::size_t history_table_capacity(double m, double h, double p,
                                                 double factor);

}  // namespace otac
