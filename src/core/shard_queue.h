// Bounded per-shard admission queue with an explicit degradation state
// machine (Normal → Degraded → Shedding, hysteresis on queue depth).
//
// The queue is a deterministic fluid model, not a real buffer: work
// arrives at trace sim-times (one unit per accepted request, plus scripted
// flash-crowd bursts) and drains continuously at the configured service
// rate. Depth is therefore a pure function of (trace, config) — the same
// run always walks the same state sequence — while still reproducing the
// shape of real overload: bursts outpace the drain, depth crosses the
// high watermark, the shard degrades, and hysteresis keeps it from
// flapping on the way back down.
//
// State semantics (enforced by the caller, core/sharded_cache.cpp):
//   Normal   — full ML admission path (batched CART classify).
//   Degraded — the paper's Original policy: admit everything cheap,
//              skip feature extraction/classification entirely.
//   Shedding — the request is dropped (counted as rejected +
//              DegradationCounters::shed_requests); it does not enter the
//              queue, which is what lets the drain win and the shard
//              recover.
#pragma once

#include <cstdint>

#include "core/resilience.h"

namespace otac {

enum class OverloadState : std::uint8_t { normal, degraded, shedding };

/// Short stable label for logs/tests ("normal", "degraded", "shedding").
[[nodiscard]] const char* to_string(OverloadState state) noexcept;

class ShardQueue {
 public:
  explicit ShardQueue(const OverloadConfig& config) noexcept;

  /// Account one request arriving at `time_s` (simulated seconds,
  /// non-decreasing per shard): drain the elapsed interval, tentatively
  /// enqueue the request, and step the state machine. Returns the state
  /// the caller must serve this request under; when it returns
  /// `shedding` the request was NOT enqueued (shed work costs nothing).
  OverloadState on_request(double time_s) noexcept;

  /// Inject extra work units at the current time (flash-crowd burst from
  /// the `chaos.flash_crowd` failpoint). State is re-evaluated so the
  /// *next* request sees the overload.
  void inject(double work_units) noexcept;

  [[nodiscard]] OverloadState state() const noexcept { return state_; }
  [[nodiscard]] double depth() const noexcept { return depth_; }
  /// State-machine transitions so far (any direction).
  [[nodiscard]] std::uint64_t transitions() const noexcept {
    return transitions_;
  }
  /// Requests returned as `shedding` by on_request().
  [[nodiscard]] std::uint64_t shed() const noexcept { return shed_; }

 private:
  void drain_until(double time_s) noexcept;
  /// Step the hysteresis state machine to a fixed point for the current
  /// depth (a burst can cross two watermarks at once, which counts as two
  /// transitions: Normal → Degraded → Shedding).
  void settle() noexcept;
  [[nodiscard]] OverloadState step(OverloadState from) const noexcept;

  OverloadConfig config_;
  OverloadState state_ = OverloadState::normal;
  double depth_ = 0.0;
  double last_time_s_ = 0.0;
  bool started_ = false;
  std::uint64_t transitions_ = 0;
  std::uint64_t shed_ = 0;
};

}  // namespace otac
