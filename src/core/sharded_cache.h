// Sharded concurrent serving layer: hash-partition the photo keyspace
// across N independent shards, each owning its own replacement policy and
// history-table slice of capacity/N, and replay the trace with per-shard
// worker threads (util/thread_pool). This is how production write-avoiding
// caches scale admission with cores (Flashield, arXiv:1702.02588; the
// ML-driven cloud block-store caches of arXiv:2501.14770) — the keyspace
// partition means shards share no mutable state on the request path.
//
// The CART model is the one deliberately shared piece: a read-mostly
// shared_ptr slot (core/model_slot.h) that workers snapshot and the
// trainer swaps after each retrain. Training samples are budgeted into
// per-shard buffers (each shard applies its 1/N slice of the §3.1.1
// per-minute rate) and drained by the global trainer at retrain barriers.
//
// Determinism is a design invariant, not an accident:
//  - the partition is a pure function of the photo id (shard_of_photo);
//  - retrain points are precomputed from request times alone
//    (retrain_trigger_indices) and act as bulk-synchronous barriers, so
//    every request observes a model that depends only on trace position,
//    never on thread scheduling;
//  - drained samples are merged in trace order, and per-shard stats are
//    merged in shard order.
// Hence shards=1 is bit-identical to IntelligentCache::run (same ServingCore
// body, same trainer, same schedule) and shards=N is reproducible for any
// thread count — which tests/core/sharded_*_test.cpp pin down.
#pragma once

#include <cstdint>
#include <vector>

#include "core/intelligent_cache.h"

namespace otac {

/// Deterministic shard assignment: SplitMix64 finalizer of the photo id,
/// reduced mod `shards`. A pure function of (photo, shards) — independent
/// of iteration order, thread count, and scheduling.
[[nodiscard]] std::size_t shard_of_photo(PhotoId photo,
                                         std::size_t shards) noexcept;

/// Request indices at which ClassifierSystem's retrain schedule fires
/// (daily at the trough hour, or every retrain_interval_hours), precomputed
/// from request times alone. The sharded replay uses them as barriers: all
/// shards finish requests <= trigger, the trainer drains the shard buffers
/// and retrains, the new model is atomically published, replay resumes.
[[nodiscard]] std::vector<std::uint64_t> retrain_trigger_indices(
    const Trace& trace, const OtaConfig& ota);

class ShardedCache {
 public:
  /// Wraps the unsharded system to reuse its trace, next-access oracle,
  /// memoized hit-rate estimates, and cost schedule.
  explicit ShardedCache(const IntelligentCache& system);

  /// Replay the trace through config.shards shards on config.threads
  /// workers (0 = one thread per shard, capped by the hardware) and merge
  /// per-shard results: stats summed in shard order (eviction hashes
  /// folded), daily confusion matrices summed per day, degradation
  /// counters summed, history capacity totalled.
  [[nodiscard]] RunResult run(const RunConfig& config) const;

 private:
  const IntelligentCache* system_;
  const Trace* trace_;
};

}  // namespace otac
