// Lifetime study: translate the write reduction of one-time-access
// exclusion into SSD endurance, using the wear model of storage/.
//
// Reproduces the paper's motivation (§1): as a cache, an SSD absorbs far
// more write density than backend storage; cutting admission writes ~79%
// multiplies its lifetime accordingly.
#include <iostream>

#include "core/intelligent_cache.h"
#include "storage/wear_model.h"
#include "trace/trace_generator.h"
#include "util/table.h"

int main() {
  using namespace otac;

  WorkloadConfig workload;
  workload.seed = 7;
  workload.num_owners = 4'000;
  workload.num_photos = 80'000;
  const Trace trace = TraceGenerator{workload}.generate();
  const IntelligentCache system{trace};

  const auto capacity =
      static_cast<std::uint64_t>(system.total_object_bytes() * 0.02);
  const double simulated_days =
      static_cast<double>(trace.horizon.seconds) / kSecondsPerDay;

  const SsdWearModel wear{SsdWearConfig{.capacity_bytes = capacity,
                                        .pe_cycles = 3000.0,
                                        .write_amplification = 1.3}};

  std::cout << "cache: " << capacity / (1024 * 1024) << " MiB, trace covers "
            << simulated_days << " days\n\n";

  TablePrinter table{{"mode", "bytes written/day", "write density (x/day)",
                      "device lifetime (years)"}};
  RunConfig config;
  config.policy = PolicyKind::lru;
  config.capacity_bytes = capacity;
  double original_lifetime = 0.0;
  double proposal_lifetime = 0.0;
  for (const AdmissionMode mode :
       {AdmissionMode::original, AdmissionMode::proposal,
        AdmissionMode::ideal}) {
    config.mode = mode;
    const RunResult run = system.run(config);
    const double per_day = run.stats.inserted_bytes / simulated_days;
    const double lifetime_years = wear.lifetime_days(per_day) / 365.25;
    if (mode == AdmissionMode::original) original_lifetime = lifetime_years;
    if (mode == AdmissionMode::proposal) proposal_lifetime = lifetime_years;
    table.add_row({admission_mode_name(mode),
                   TablePrinter::fmt(per_day / 1e9, 2) + " GB",
                   TablePrinter::fmt(wear.write_density(per_day), 1),
                   TablePrinter::fmt(lifetime_years, 1)});
  }
  std::cout << table.to_string();
  if (original_lifetime > 0.0) {
    std::cout << "\none-time-access exclusion extends SSD lifetime "
              << TablePrinter::fmt(proposal_lifetime / original_lifetime, 1)
              << "x on this workload.\n";
  }
  return 0;
}
