// Daily operations walkthrough: watch the deployed classification system
// live through a multi-day trace — daily 05:00 retraining, per-day
// classifier quality, the history table correcting mistakes, and the final
// decision tree in human-readable form.
//
// With --checkpoint-dir=DIR the run becomes restartable: an existing
// checkpoint in DIR is validated and restored before the simulation
// (corrupt generations fall back previous -> cold start), and the final
// classifier state is persisted crash-safely on exit — rerun the binary to
// see day 0 start warm with the previous run's tree.
#include <fstream>
#include <iostream>
#include <optional>

#include "cachesim/simulator.h"
#include "core/checkpoint.h"
#include "core/classifier_system.h"
#include "core/ota_criteria.h"
#include "core/run_metrics.h"
#include "obs/report.h"
#include "storage/latency_model.h"
#include "trace/trace_generator.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace otac;

  const FlagParser flags{argc, argv};
  const std::string checkpoint_dir =
      flags.get("checkpoint-dir", std::string{});
  const std::string metrics_out = flags.get("metrics-out", std::string{});

  // One registry observes the whole walkthrough: serving counters, fit
  // timings, checkpoint durability telemetry, and the simulated latency
  // distribution all land here and are exported at the end.
  obs::MetricsRegistry registry;

  WorkloadConfig workload;
  workload.seed = 11;
  workload.num_owners = 3'000;
  workload.num_photos = 60'000;
  const Trace trace = TraceGenerator{workload}.generate();
  const NextAccessInfo oracle = compute_next_access(trace);

  // Criteria for a cache of ~1.5% of the dataset.
  double dataset_bytes = 0.0;
  for (const auto& photo : trace.catalog.photos()) {
    dataset_bytes += photo.size_bytes;
  }
  const auto capacity = static_cast<std::uint64_t>(dataset_bytes * 0.015);

  // Quick hit-rate estimate with a plain LRU pass.
  const auto estimator = make_policy(PolicyKind::lru, capacity);
  AlwaysAdmit always;
  Simulator estimate_sim{trace};
  const double h = estimate_sim.run(*estimator, always).file_hit_rate();

  const CriteriaResult criteria =
      compute_criteria(trace, oracle, capacity, h);
  std::cout << "criteria: M = " << TablePrinter::fmt(criteria.m, 0)
            << " requests  (h=" << TablePrinter::fmt(criteria.h, 3)
            << ", p=" << TablePrinter::fmt(criteria.p, 3)
            << ", mean photo = "
            << TablePrinter::fmt(criteria.mean_size / 1024.0, 1) << " KB)\n\n";

  ClassifierSystemConfig cs_config;
  cs_config.m = criteria.m;
  cs_config.h = criteria.h;
  cs_config.p = criteria.p;
  ClassifierSystem classifier{trace, oracle, cs_config};
  classifier.bind_metrics(registry);
  std::cout << "history table capacity: " << classifier.history().capacity()
            << " entries (M(1-h)p x 0.05)\n\n";

  std::optional<CheckpointManager> manager;
  if (!checkpoint_dir.empty()) {
    manager.emplace(checkpoint_dir);
    manager->bind_metrics(registry);
  }

  if (manager) {
    const CheckpointLoad loaded = manager->load();
    std::cout << "checkpoint load from " << checkpoint_dir << ": "
              << checkpoint_origin_name(loaded.origin);
    if (loaded.rejected_files > 0) {
      std::cout << " (" << loaded.rejected_files
                << " corrupt generation(s) rejected)";
    }
    std::cout << "\n";
    if (loaded.origin != CheckpointOrigin::none) {
      const bool model_ok = classifier.restore(loaded.snapshot);
      std::cout << "  restored: " << loaded.snapshot.samples.size()
                << " trainer samples, " << loaded.snapshot.history.size()
                << " history entries, "
                << (loaded.snapshot.model_blob.empty()
                        ? std::string{"no model"}
                        : model_ok ? std::string{"model ok"}
                                   : std::string{"model REJECTED -> admit-all"})
                << "\n";
      if (loaded.snapshot.m != criteria.m) {
        std::cout << "  note: checkpointed M=" << loaded.snapshot.m
                  << " differs from this run's M=" << criteria.m << "\n";
      }
    }
    std::cout << "\n";
  }

  const auto policy = make_policy(PolicyKind::lru, capacity);
  Simulator sim{trace};
  sim.set_day_callback([](std::int64_t day, std::uint64_t index) {
    std::cout << "--- day " << day << " begins at request " << index << "\n";
  });
  const LatencyModel latency{LatencyConfig{}};
  obs::LatencyRecorder recorder{
      registry.histogram(kLatencyHistogramName,
                         LatencyModel::histogram_bounds_us()),
      latency.request_latency_us(true, /*proposed=*/true),
      latency.request_latency_us(false, /*proposed=*/true)};
  sim.set_latency_recorder(&recorder);
  const CacheStats stats = sim.run(*policy, classifier);

  std::cout << "\nper-day classifier quality (raw tree vs after history "
               "table):\n";
  TablePrinter table{{"day", "precision", "recall", "accuracy",
                      "accuracy (corrected)"}};
  for (const DayClassifierMetrics& day : classifier.daily_metrics()) {
    table.add_row({std::to_string(day.day),
                   TablePrinter::fmt(day.raw.precision(), 3),
                   TablePrinter::fmt(day.raw.recall(), 3),
                   TablePrinter::fmt(day.raw.accuracy(), 3),
                   TablePrinter::fmt(day.corrected.accuracy(), 3)});
  }
  std::cout << table.to_string() << "\n";

  std::cout << "history table rectified "
            << classifier.history().rectified_count()
            << " misclassifications; " << classifier.trainings()
            << " daily trainings ran\n\n";
  std::cout << "final decision tree:\n";
  if (classifier.model() != nullptr) {
    std::cout << classifier.model()->to_text(FeatureExtractor::feature_names());
  }

  std::cout << "\ncache outcome: hit rate "
            << TablePrinter::pct(stats.file_hit_rate()) << ", SSD writes "
            << stats.insertions << " (" << stats.rejected
            << " misses bypassed the cache)\n";

  const DegradationCounters& degraded = classifier.degradation();
  if (degraded.total() > 0) {
    std::cout << "serving degradations: " << degraded.retrain_failures
              << " retrain failures, " << degraded.rejected_models
              << " rejected models, " << degraded.nonfinite_feature_requests
              << " non-finite-feature fallbacks, "
              << degraded.predict_failures << " predict fallbacks\n";
  }

  if (manager) {
    try {
      manager->save(classifier.snapshot());
      std::cout << "checkpoint saved to " << manager->current_path() << "\n";
    } catch (const std::exception& error) {
      // A failed save must not fail the run — the previous generation is
      // still intact on disk by construction.
      std::cout << "checkpoint save FAILED (" << error.what()
                << "); previous generation retained\n";
    }
  }

  if (!metrics_out.empty()) {
    populate_cache_metrics(registry, stats);
    populate_history_metrics(registry, classifier.history());
    populate_degradation_metrics(registry, classifier.degradation());
    registry.set("trainer.trainings",
                 static_cast<std::uint64_t>(classifier.trainings()));

    obs::RunReport report;
    report.source = "daily_operations";
    report.mode = "Proposal";
    report.policy = policy_name(PolicyKind::lru);
    report.shards = 1;
    report.threads = 1;
    report.merged = registry.snapshot();
    report.per_shard.push_back(report.merged);
    if (!trace.requests.empty()) {
      report.timeline.push_back(
          obs::BarrierSample{trace.requests.size() - 1,
                             trace.requests.back().time.seconds,
                             report.merged});
    }
    const double hit_rate = stats.file_hit_rate();
    report.derived = derived_run_metrics(
        stats, latency.mean_access_time_proposed_us(hit_rate));

    const std::string failed = obs::write_report_files(report, metrics_out);
    if (!failed.empty()) {
      std::cerr << "cannot open " << failed << "\n";
      return 1;
    }
    std::cout << "metrics: " << metrics_out << " + "
              << obs::prometheus_path_of(metrics_out) << "\n";
  }
  return 0;
}
