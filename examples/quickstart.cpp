// Quickstart: synthesize a small photo workload, run an LRU cache with and
// without the ML one-time-access-exclusion admission policy, and compare.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "core/intelligent_cache.h"
#include "trace/trace_generator.h"
#include "util/table.h"

int main() {
  using namespace otac;

  // 1. A small synthetic trace (~60k photos, ~240k requests, 9 days).
  WorkloadConfig workload;
  workload.seed = 42;
  workload.num_owners = 3'000;
  workload.num_photos = 60'000;
  const Trace trace = TraceGenerator{workload}.generate();
  std::cout << "trace: " << trace.requests.size() << " requests over "
            << trace.catalog.photo_count() << " photos\n";

  // 2. The intelligent-cache runner (computes the reuse oracle once).
  const IntelligentCache system{trace};

  // 3. Run the same LRU cache in three modes at ~1.5% of the dataset.
  RunConfig config;
  config.policy = PolicyKind::lru;
  config.capacity_bytes =
      static_cast<std::uint64_t>(system.total_object_bytes() * 0.015);

  TablePrinter table{{"mode", "file hit rate", "byte hit rate",
                      "SSD writes", "mean latency (us)"}};
  for (const AdmissionMode mode :
       {AdmissionMode::original, AdmissionMode::proposal,
        AdmissionMode::ideal}) {
    config.mode = mode;
    const RunResult run = system.run(config);
    table.add_row({admission_mode_name(mode),
                   TablePrinter::fmt(run.stats.file_hit_rate(), 4),
                   TablePrinter::fmt(run.stats.byte_hit_rate(), 4),
                   std::to_string(run.stats.insertions),
                   TablePrinter::fmt(run.mean_latency_us, 1)});
    if (mode == AdmissionMode::proposal) {
      std::cout << "proposal internals: M="
                << TablePrinter::fmt(run.criteria.m, 0)
                << " requests, cost v=" << run.cost_v
                << ", history table=" << run.history_capacity
                << " entries, " << run.trainings << " daily trainings\n";
    }
  }
  std::cout << "\n" << table.to_string();
  std::cout << "\nThe Proposal row should show a higher hit rate and a "
               "fraction of the SSD writes of Original.\n";
  return 0;
}
