// Two-tier photo CDN (paper §2.1, Figure 1): Outside Cache close to users,
// Datacenter Cache in front of backend storage. Shows where one-time-access
// exclusion pays off in a hierarchy: the small OC tier benefits most, and
// filtering at OC changes what the DC tier sees.
#include <iostream>

#include "cachesim/tiered.h"
#include "core/classifier_system.h"
#include "core/ota_criteria.h"
#include "cachesim/simulator.h"
#include "trace/trace_generator.h"
#include "util/table.h"

namespace {

using namespace otac;

struct Scenario {
  const char* label;
  bool classify_oc;
  bool classify_dc;
};

}  // namespace

int main() {
  using namespace otac;

  WorkloadConfig workload;
  workload.seed = 5;
  workload.num_owners = 3'000;
  workload.num_photos = 60'000;
  const Trace trace = TraceGenerator{workload}.generate();
  const NextAccessInfo oracle = compute_next_access(trace);

  double dataset_bytes = 0.0;
  for (const auto& photo : trace.catalog.photos()) {
    dataset_bytes += photo.size_bytes;
  }
  const auto oc_capacity = static_cast<std::uint64_t>(dataset_bytes * 0.005);
  const auto dc_capacity = static_cast<std::uint64_t>(dataset_bytes * 0.03);
  std::cout << "OC " << oc_capacity / (1024 * 1024) << " MiB (edge), DC "
            << dc_capacity / (1024 * 1024) << " MiB (datacenter), dataset "
            << static_cast<std::uint64_t>(dataset_bytes) / (1024 * 1024)
            << " MiB\n\n";

  // Criteria per tier (each tier has its own C and h).
  const auto criteria_for = [&](std::uint64_t capacity) {
    const auto estimator = make_policy(PolicyKind::lru, capacity);
    AlwaysAdmit always;
    Simulator sim{trace};
    const double h = sim.run(*estimator, always).file_hit_rate();
    return compute_criteria(trace, oracle, capacity, h);
  };
  const CriteriaResult oc_criteria = criteria_for(oc_capacity);
  const CriteriaResult dc_criteria = criteria_for(dc_capacity);

  const LatencyModel latency{};
  constexpr double kOcToDcRttUs = 10'000.0;  // 10 ms WAN round trip

  const Scenario scenarios[] = {
      {"no classifier", false, false},
      {"classifier at OC", true, false},
      {"classifier at DC", false, true},
      {"classifier at both", true, true},
  };

  TablePrinter table{{"deployment", "OC hit", "DC hit", "combined",
                      "OC writes", "DC writes", "latency (us)"}};
  for (const Scenario& scenario : scenarios) {
    const auto oc = make_policy(PolicyKind::lru, oc_capacity);
    const auto dc = make_policy(PolicyKind::s3lru, dc_capacity);

    AlwaysAdmit always_oc;
    AlwaysAdmit always_dc;
    ClassifierSystemConfig oc_cs;
    oc_cs.m = oc_criteria.m;
    oc_cs.h = oc_criteria.h;
    oc_cs.p = oc_criteria.p;
    oc_cs.collect_daily_metrics = false;
    ClassifierSystemConfig dc_cs;
    dc_cs.m = dc_criteria.m;
    dc_cs.h = dc_criteria.h;
    dc_cs.p = dc_criteria.p;
    dc_cs.collect_daily_metrics = false;
    ClassifierSystem oc_classifier{trace, oracle, oc_cs};
    ClassifierSystem dc_classifier{trace, oracle, dc_cs};

    AdmissionPolicy& oc_admission =
        scenario.classify_oc ? static_cast<AdmissionPolicy&>(oc_classifier)
                             : always_oc;
    AdmissionPolicy& dc_admission =
        scenario.classify_dc ? static_cast<AdmissionPolicy&>(dc_classifier)
                             : always_dc;

    TieredSimulator sim{trace};
    sim.set_oracle(oracle);
    const TieredStats stats =
        sim.run(*oc, oc_admission, *dc, dc_admission);

    table.add_row(
        {scenario.label, TablePrinter::fmt(stats.oc.file_hit_rate(), 4),
         TablePrinter::fmt(stats.dc.file_hit_rate(), 4),
         TablePrinter::fmt(stats.combined_hit_rate(), 4),
         std::to_string(stats.oc.insertions),
         std::to_string(stats.dc.insertions),
         TablePrinter::fmt(stats.mean_latency_us(latency, kOcToDcRttUs), 1)});
  }
  std::cout << table.to_string()
            << "\nClassifying at the small edge tier removes most of its SSD "
               "writes; classifying at both tiers protects both devices "
               "while keeping combined hit rate.\n";
  return 0;
}
