// otac_sim: command-line driver for the whole system. Simulate a synthetic
// or imported (CSV) trace through any replacement policy and admission
// mode; optionally export the trace or the trained model.
//
// Examples:
//   otac_sim --policy lirs --mode proposal --capacity-frac 0.02
//   otac_sim --photos 200000 --days 9 --mode ideal --paper-gb 10
//   otac_sim --import mylog.csv --policy lru --mode proposal
//   otac_sim --export trace.csv --photos 50000
//   otac_sim --shards 8 --threads 8 --mode proposal
#include <fstream>
#include <iostream>

#include "core/intelligent_cache.h"
#include "core/sharded_cache.h"
#include "experiments/workloads.h"
#include "trace/trace_generator.h"
#include "trace/trace_io.h"
#include "trace/trace_stats.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using namespace otac;

AdmissionMode parse_mode(const std::string& name) {
  if (name == "original") return AdmissionMode::original;
  if (name == "proposal") return AdmissionMode::proposal;
  if (name == "ideal") return AdmissionMode::ideal;
  if (name == "bypass") return AdmissionMode::bypass;
  throw std::invalid_argument(
      "unknown --mode '" + name + "' (original|proposal|ideal|bypass)");
}

int write_metrics_files(const obs::RunReport& report,
                        const std::string& json_path) {
  const std::string failed = obs::write_report_files(report, json_path);
  if (!failed.empty()) {
    std::cerr << "cannot open " << failed << "\n";
    return 1;
  }
  std::cout << "metrics: " << json_path << " + "
            << obs::prometheus_path_of(json_path) << "\n";
  return 0;
}

int run(const FlagParser& flags) {
  if (flags.has("help")) {
    std::cout
        << "usage: otac_sim [flags]\n"
           "  --import FILE        replay a request CSV instead of synthesizing\n"
           "  --photos N           synthetic photo count (default 100000)\n"
           "  --owners N           synthetic owner count (default photos/20)\n"
           "  --days D             trace horizon in days (default 9)\n"
           "  --seed S             RNG seed (default 42)\n"
           "  --policy P           lru|fifo|s3lru|arc|lirs|lfu|belady (lru)\n"
           "  --mode M             original|proposal|ideal|bypass (proposal)\n"
           "  --capacity-frac F    cache size as fraction of dataset (0.015)\n"
           "  --paper-gb G         ...or as the paper's 2-20 GB axis value\n"
           "  --shards N           partition photos across N shards (1 =\n"
           "                       unsharded reference path)\n"
           "  --threads T          worker threads for the sharded replay\n"
           "                       (default: one per shard, capped by cores)\n"
           "  --export FILE        write the trace as CSV and exit\n"
           "  --stats              print trace characterization first\n"
           "  --metrics-out FILE   write the run report as pretty JSON to\n"
           "                       FILE and Prometheus text exposition to\n"
           "                       the matching .prom path; routes through\n"
           "                       the sharded layer (even --shards 1) so\n"
           "                       the report carries the per-barrier\n"
           "                       time-series\n";
    return 0;
  }

  Trace trace;
  if (flags.has("import")) {
    std::ifstream in(flags.get("import", std::string{}));
    if (!in) {
      std::cerr << "cannot open " << flags.get("import", std::string{})
                << "\n";
      return 1;
    }
    trace = import_requests_csv(in);
  } else {
    WorkloadConfig workload;
    workload.num_photos = static_cast<std::uint32_t>(
        flags.get("photos", static_cast<std::int64_t>(100'000)));
    workload.num_owners = static_cast<std::uint32_t>(flags.get(
        "owners", static_cast<std::int64_t>(workload.num_photos / 20 + 1)));
    workload.horizon_days = flags.get("days", 9.0);
    workload.seed =
        static_cast<std::uint64_t>(flags.get("seed", std::int64_t{42}));
    trace = TraceGenerator{workload}.generate();
  }
  std::cout << "trace: " << trace.requests.size() << " requests, "
            << trace.catalog.photo_count() << " objects\n";

  if (flags.has("export")) {
    std::ofstream out(flags.get("export", std::string{}));
    if (!out) {
      std::cerr << "cannot open export path\n";
      return 1;
    }
    export_requests_csv(trace, out);
    std::cout << "exported to " << flags.get("export", std::string{}) << "\n";
    return 0;
  }

  if (flags.get("stats", false)) {
    const TraceStats stats = compute_trace_stats(trace);
    std::cout << "one-time objects: "
              << TablePrinter::pct(stats.one_time_object_fraction())
              << ", hit-rate cap: " << TablePrinter::pct(stats.hit_rate_cap())
              << ", mean size: "
              << TablePrinter::fmt(stats.mean_request_size_bytes / 1024.0, 1)
              << " KB\n";
  }

  const IntelligentCache system{trace};
  RunConfig config;
  config.policy = policy_kind_from_name(flags.get("policy", std::string{"lru"}));
  config.mode = parse_mode(flags.get("mode", std::string{"proposal"}));
  config.shards = static_cast<std::size_t>(
      flags.get("shards", std::int64_t{1}));
  config.threads = static_cast<std::size_t>(
      flags.get("threads", std::int64_t{0}));
  if (flags.has("paper-gb")) {
    config.capacity_bytes =
        map_paper_gb(flags.get("paper-gb", 10.0), system.total_object_bytes());
  } else {
    config.capacity_bytes = static_cast<std::uint64_t>(
        system.total_object_bytes() * flags.get("capacity-frac", 0.015));
  }
  std::cout << "cache: " << policy_name(config.policy) << " "
            << config.capacity_bytes / (1024 * 1024) << " MiB, mode "
            << admission_mode_name(config.mode);
  if (config.shards > 1) {
    std::cout << ", " << config.shards << " shards";
  }
  std::cout << "\n";

  // shards=1 routes through the sharded layer too (it is bit-identical to
  // IntelligentCache::run by construction and by test), but keeping the
  // unsharded call here preserves the reference path end to end — unless a
  // metrics report was requested, where the sharded layer's per-barrier
  // time-series is the point.
  const bool want_metrics = flags.has("metrics-out");
  const RunResult result = config.shards > 1 || want_metrics
                               ? ShardedCache{system}.run(config)
                               : system.run(config);
  if (want_metrics) {
    obs::RunReport report = result.obs;
    report.source = "otac_sim";
    const int status =
        write_metrics_files(report, flags.get("metrics-out", std::string{}));
    if (status != 0) return status;
  }
  TablePrinter table{{"metric", "value"}};
  table.add_row({"file hit rate",
                 TablePrinter::fmt(result.stats.file_hit_rate(), 4)});
  table.add_row({"byte hit rate",
                 TablePrinter::fmt(result.stats.byte_hit_rate(), 4)});
  table.add_row({"SSD writes (files)", std::to_string(result.stats.insertions)});
  table.add_row({"SSD writes (GB)",
                 TablePrinter::fmt(result.stats.inserted_bytes / 1e9, 3)});
  table.add_row({"rejected misses", std::to_string(result.stats.rejected)});
  table.add_row({"mean latency (us)",
                 TablePrinter::fmt(result.mean_latency_us, 1)});
  if (config.mode == AdmissionMode::proposal ||
      config.mode == AdmissionMode::ideal) {
    table.add_row({"criteria M", TablePrinter::fmt(result.criteria.m, 0)});
  }
  if (config.mode == AdmissionMode::proposal) {
    table.add_row({"daily trainings", std::to_string(result.trainings)});
    table.add_row({"history table", std::to_string(result.history_capacity)});
  }
  std::cout << table.to_string();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(FlagParser{argc, argv});
  } catch (const std::exception& error) {
    std::cerr << "otac_sim: " << error.what() << "\n";
    return 1;
  }
}
