// Workload explorer: vary the synthesizer's knobs (one-time fraction,
// popularity skew, diurnal shape) and see how the one-time-access-exclusion
// payoff changes — the "when does this technique help?" question a
// practitioner asks before deploying it.
//
// Usage: workload_explorer [one_time_object_fraction ...]
//        (defaults: 0.3 0.45 0.615 0.75)
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/intelligent_cache.h"
#include "trace/trace_generator.h"
#include "trace/trace_stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace otac;

  std::vector<double> fractions;
  for (int i = 1; i < argc; ++i) {
    const double value = std::atof(argv[i]);
    if (value > 0.0 && value < 0.95) fractions.push_back(value);
  }
  if (fractions.empty()) fractions = {0.30, 0.45, 0.615, 0.75};

  TablePrinter table{{"one-time objects", "hit cap", "orig hit", "prop hit",
                      "hit gain", "write cut", "M"}};

  for (const double fraction : fractions) {
    WorkloadConfig workload;
    workload.seed = 21;
    workload.num_owners = 3'000;
    workload.num_photos = 60'000;
    workload.one_time_object_fraction = fraction;
    // Keep mean accesses/object fixed so runs are comparable.
    workload.one_time_access_share = fraction / 3.95;

    const Trace trace = TraceGenerator{workload}.generate();
    const TraceStats stats = compute_trace_stats(trace);
    const IntelligentCache system{trace};

    RunConfig config;
    config.policy = PolicyKind::lru;
    config.capacity_bytes =
        static_cast<std::uint64_t>(system.total_object_bytes() * 0.015);

    config.mode = AdmissionMode::original;
    const RunResult original = system.run(config);
    config.mode = AdmissionMode::proposal;
    const RunResult proposal = system.run(config);

    const double hit_gain = original.stats.file_hit_rate() > 0
                                ? proposal.stats.file_hit_rate() /
                                          original.stats.file_hit_rate() -
                                      1.0
                                : 0.0;
    const double write_cut =
        original.stats.insertions > 0
            ? 1.0 - static_cast<double>(proposal.stats.insertions) /
                        static_cast<double>(original.stats.insertions)
            : 0.0;
    table.add_row({TablePrinter::pct(fraction, 1),
                   TablePrinter::pct(stats.hit_rate_cap()),
                   TablePrinter::fmt(original.stats.file_hit_rate(), 4),
                   TablePrinter::fmt(proposal.stats.file_hit_rate(), 4),
                   TablePrinter::pct(hit_gain),
                   TablePrinter::pct(write_cut),
                   TablePrinter::fmt(proposal.criteria.m, 0)});
  }
  std::cout << table.to_string()
            << "\nThe more one-time traffic a workload carries, the more "
               "admission filtering pays off — and it never hurts much "
               "when there is little.\n";
  return 0;
}
